"""Exact reliability computation for small graphs (test oracle).

Two-terminal (and source-set-to-target) reliability is #P-complete
(Valiant 1979; paper Section 2), so these routines are exponential by
necessity.  They exist to provide *ground truth* for the test-suite and for
validating the paper's bounds (Theorems 1, 4, 5) on graphs small enough to
enumerate:

* :func:`exact_reliability_bruteforce` enumerates all ``2^m`` worlds
  (practical to ``m <= ~20``),
* :func:`exact_reliability` uses recursive arc factoring with
  reachability-aware early termination, which handles graphs a fair bit
  larger in the typical case,
* :func:`exact_outreach` computes the outreach probability
  ``R_out(S, C)`` of Definition 1 exactly,
* :func:`exact_reliability_search` answers Problem 1 exactly.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import EmptySourceSetError, NodeNotFoundError
from .uncertain import UncertainGraph

__all__ = [
    "exact_reliability_bruteforce",
    "exact_reliability",
    "exact_outreach",
    "exact_reliability_search",
    "exact_hop_reliability",
]


def _check_query(graph: UncertainGraph, sources: Sequence[int]) -> List[int]:
    sources = list(dict.fromkeys(sources))
    if not sources:
        raise EmptySourceSetError()
    for s in sources:
        if s not in graph:
            raise NodeNotFoundError(s)
    return sources


def _reaches(
    adjacency: Dict[int, List[int]], sources: Iterable[int], targets: Set[int]
) -> bool:
    """BFS test: does any source reach any node in *targets*?"""
    visited = set(sources)
    if visited & targets:
        return True
    queue = deque(visited)
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):
            if v not in visited:
                if v in targets:
                    return True
                visited.add(v)
                queue.append(v)
    return False


def exact_reliability_bruteforce(
    graph: UncertainGraph, sources: Sequence[int], target: int
) -> float:
    """``R(S, t)`` by full possible-world enumeration (Eq. 2 verbatim).

    Exponential in the number of arcs; raises :class:`ValueError` above
    24 arcs to protect callers from accidental blow-ups.
    """
    sources = _check_query(graph, sources)
    if target not in graph:
        raise NodeNotFoundError(target)
    if target in sources:
        return 1.0
    arcs = list(graph.arcs())
    if len(arcs) > 24:
        raise ValueError(
            f"brute-force enumeration limited to 24 arcs, graph has {len(arcs)}"
        )
    total = 0.0
    for mask in range(1 << len(arcs)):
        world_prob = 1.0
        adjacency: Dict[int, List[int]] = {}
        for i, (u, v, p) in enumerate(arcs):
            if mask >> i & 1:
                world_prob *= p
                adjacency.setdefault(u, []).append(v)
            else:
                world_prob *= 1.0 - p
        if world_prob == 0.0:
            continue
        if _reaches(adjacency, sources, {target}):
            total += world_prob
    return min(1.0, total)


def _factoring(
    arcs: List[Tuple[int, int, float]],
    present: Set[int],
    sources: FrozenSet[int],
    targets: FrozenSet[int],
    index: int,
) -> float:
    """Recursive conditioning on arc existence.

    ``present`` holds indices of arcs decided to exist.  At each step we
    first test two short-circuits:

    * if the sources already reach a target using only *decided-present*
      arcs, the event occurs with probability 1 regardless of the
      undecided arcs;
    * if the sources cannot reach a target even when *all undecided*
      arcs are assumed present, the probability is 0.

    Otherwise we condition on the next undecided arc (factoring / pivotal
    decomposition: ``R = p * R[a present] + (1-p) * R[a absent]``).
    """
    # Short-circuit 1: success already certain.
    adjacency_present: Dict[int, List[int]] = {}
    for i in present:
        u, v, _ = arcs[i]
        adjacency_present.setdefault(u, []).append(v)
    if _reaches(adjacency_present, sources, set(targets)):
        return 1.0
    # Short-circuit 2: success impossible.
    adjacency_optimistic: Dict[int, List[int]] = {}
    for i in present:
        u, v, _ = arcs[i]
        adjacency_optimistic.setdefault(u, []).append(v)
    for i in range(index, len(arcs)):
        u, v, _ = arcs[i]
        adjacency_optimistic.setdefault(u, []).append(v)
    if not _reaches(adjacency_optimistic, sources, set(targets)):
        return 0.0
    # Condition on the next arc.
    u, v, p = arcs[index]
    present.add(index)
    with_arc = _factoring(arcs, present, sources, targets, index + 1)
    present.discard(index)
    without_arc = _factoring(arcs, present, sources, targets, index + 1)
    return p * with_arc + (1.0 - p) * without_arc


def exact_reliability(
    graph: UncertainGraph, sources: Sequence[int], target: int
) -> float:
    """``R(S, t)`` by recursive factoring with early termination.

    Exact for any input, exponential in the worst case; intended for the
    test oracle on graphs with up to a few dozen arcs.
    """
    sources = _check_query(graph, sources)
    if target not in graph:
        raise NodeNotFoundError(target)
    if target in sources:
        return 1.0
    arcs = list(graph.arcs())
    return _factoring(
        arcs, set(), frozenset(sources), frozenset({target}), 0
    )


def exact_outreach(
    graph: UncertainGraph, sources: Sequence[int], cluster: Iterable[int]
) -> float:
    """Outreach probability ``R_out(S, C)`` of Definition 1, exactly.

    The probability that the source set reaches *at least one* node
    outside *cluster*.  Computed by factoring with the complement of the
    cluster as the target set.
    """
    sources = _check_query(graph, sources)
    cluster_set = set(cluster)
    for s in sources:
        if s not in cluster_set:
            raise ValueError(f"source {s} must lie inside the cluster")
    outside = frozenset(set(graph.nodes()) - cluster_set)
    if not outside:
        return 0.0
    arcs = list(graph.arcs())
    return _factoring(arcs, set(), frozenset(sources), outside, 0)


def exact_hop_reliability(
    graph: UncertainGraph,
    sources: Sequence[int],
    target: int,
    max_hops: int,
) -> float:
    """Distance-constrained reliability by full world enumeration.

    The probability that *target* lies within *max_hops* arcs of the
    source set (Jin et al. [20]'s query).  Exponential in the number of
    arcs (limit 24); a test oracle for the engine's ``max_hops`` mode.
    """
    sources = _check_query(graph, sources)
    if target not in graph:
        raise NodeNotFoundError(target)
    if target in sources:
        return 1.0
    if max_hops < 0:
        raise ValueError(f"max_hops must be non-negative, got {max_hops}")
    arcs = list(graph.arcs())
    if len(arcs) > 24:
        raise ValueError(
            f"brute-force enumeration limited to 24 arcs, graph has {len(arcs)}"
        )
    total = 0.0
    for mask in range(1 << len(arcs)):
        world_prob = 1.0
        adjacency: Dict[int, List[int]] = {}
        for i, (u, v, p) in enumerate(arcs):
            if mask >> i & 1:
                world_prob *= p
                adjacency.setdefault(u, []).append(v)
            else:
                world_prob *= 1.0 - p
        if world_prob == 0.0:
            continue
        # Hop-bounded BFS inside the world.
        frontier = set(sources)
        seen = set(sources)
        reached = False
        for _ in range(max_hops):
            next_frontier = set()
            for u in frontier:
                for v in adjacency.get(u, ()):
                    if v == target:
                        reached = True
                        break
                    if v not in seen:
                        seen.add(v)
                        next_frontier.add(v)
                if reached:
                    break
            if reached or not next_frontier:
                break
            frontier = next_frontier
        if reached:
            total += world_prob
    return min(1.0, total)


def exact_reliability_search(
    graph: UncertainGraph, sources: Sequence[int], eta: float
) -> Set[int]:
    """Exact answer to Problem 1: ``{t : R(S, t) >= eta}``.

    Source nodes are trivially part of the answer (``R(S, s) = 1``),
    matching Example 1 of the paper where the query node itself appears
    in the result set.
    """
    sources = _check_query(graph, sources)
    answer: Set[int] = set(sources)
    for t in graph.nodes():
        if t in answer:
            continue
        if exact_reliability(graph, sources, t) >= eta:
            answer.add(t)
    return answer
