"""Serialization of uncertain graphs.

Two interchange formats are supported:

* a whitespace-separated **edge-list text format** (``u v p`` per line,
  ``#`` comments, optional ``%% nodes <n>`` header to preserve isolated
  trailing nodes) — the format the original datasets (DBLP, BioMine, ...)
  typically ship in;
* a **JSON document** with explicit node count and arc triples, used for
  round-tripping graphs together with RQ-tree indexes.

Paths ending in ``.gz`` are read and written gzip-compressed
transparently (real uncertain-graph datasets routinely ship gzipped).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Iterable, List, Tuple, Union

from ..errors import GraphError
from .uncertain import UncertainGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "save_graph_json",
    "load_graph_json",
]

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    """Open *path* as text, gzip-transparently for ``.gz`` suffixes."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def write_edge_list(graph: UncertainGraph, destination: PathLike) -> None:
    """Write the graph in the text edge-list format.

    The ``%% nodes`` header records the exact node count so graphs with
    isolated highest-id nodes survive a round-trip.
    """
    path = Path(destination)
    with _open_text(path, "w") as handle:
        handle.write(f"%% nodes {graph.num_nodes}\n")
        handle.write("# u v p\n")
        for u, v, p in graph.arcs():
            handle.write(f"{u} {v} {p:.12g}\n")


def read_edge_list(source: PathLike) -> UncertainGraph:
    """Parse a text edge-list file into an :class:`UncertainGraph`.

    Lines starting with ``#`` are comments; a ``%% nodes <n>`` line sets
    the node count explicitly.  Malformed lines raise
    :class:`~repro.errors.GraphError` with the offending line number.
    """
    path = Path(source)
    declared_nodes = None
    arcs: List[Tuple[int, int, float]] = []
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("%%"):
                parts = line.split()
                if len(parts) == 3 and parts[1] == "nodes":
                    try:
                        declared_nodes = int(parts[2])
                    except ValueError:
                        raise GraphError(
                            f"{path}:{lineno}: bad node-count header {line!r}"
                        ) from None
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v p', got {line!r}"
                )
            try:
                u, v, p = int(parts[0]), int(parts[1]), float(parts[2])
            except ValueError:
                raise GraphError(
                    f"{path}:{lineno}: could not parse {line!r}"
                ) from None
            arcs.append((u, v, p))
    return UncertainGraph.from_arcs(arcs, n=declared_nodes)


def graph_to_json(graph: UncertainGraph) -> dict:
    """A JSON-serializable dict representation of the graph."""
    return {
        "format": "repro-uncertain-graph",
        "version": 1,
        "num_nodes": graph.num_nodes,
        "arcs": [[u, v, p] for u, v, p in graph.arcs()],
    }


def graph_from_json(document: dict) -> UncertainGraph:
    """Rebuild a graph from :func:`graph_to_json` output."""
    if document.get("format") != "repro-uncertain-graph":
        raise GraphError(
            f"unrecognized graph document format {document.get('format')!r}"
        )
    arcs = [(int(u), int(v), float(p)) for u, v, p in document["arcs"]]
    return UncertainGraph.from_arcs(arcs, n=int(document["num_nodes"]))


def save_graph_json(graph: UncertainGraph, destination: PathLike) -> None:
    """Write the JSON representation of *graph* to *destination*."""
    path = Path(destination)
    with _open_text(path, "w") as handle:
        json.dump(graph_to_json(graph), handle)


def load_graph_json(source: PathLike) -> UncertainGraph:
    """Read a graph previously written by :func:`save_graph_json`."""
    path = Path(source)
    with _open_text(path, "r") as handle:
        return graph_from_json(json.load(handle))
