"""Possible-world sampling primitives.

Possible-world semantics (paper, Section 2) interpret an uncertain graph as
a distribution over deterministic subgraphs: world ``G`` keeps each arc
``a`` independently with probability ``p(a)``.  This module provides

* :class:`WorldSampler` — materialize full worlds (useful for tests and
  for the exact/brute-force oracle),
* :func:`sample_reachable` — the paper's *lazy* sampler: a BFS from the
  source set that flips each out-arc's coin only when the BFS first
  touches it.  For reachability queries this is distributionally
  equivalent to materializing the full world (each arc's indicator is
  read at most once per world) while only paying for the part of the
  world the BFS actually visits.
* :class:`ReachabilityFrequencyEstimator` — tallies per-node hit counts
  across ``K`` worlds; both the MC-Sampling baseline and RQ-tree-MC
  verification are thin wrappers over it.
"""

from __future__ import annotations

import logging
import random
from collections import Counter, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..accel import resolve_backend, sample_reach_batch
from .uncertain import UncertainGraph, WeightedArc

#: Structured warnings about degraded execution (backend fallback).
_LOGGER = logging.getLogger("repro.resilience")

__all__ = [
    "WorldSampler",
    "sample_reachable",
    "ReachabilityFrequencyEstimator",
]


class WorldSampler:
    """Samples complete possible worlds of an uncertain graph.

    Parameters
    ----------
    graph:
        The uncertain graph to sample from.
    seed:
        Seed for the private :class:`random.Random` instance.  Two
        samplers built with the same seed generate identical world
        sequences, which the tests rely on.
    """

    def __init__(self, graph: UncertainGraph, seed: Optional[int] = None) -> None:
        self._graph = graph
        self._rng = random.Random(seed)
        self._arc_list: Optional[List[WeightedArc]] = None
        self._arc_version = -1

    def _arcs(self) -> List[WeightedArc]:
        """The graph's arc list, snapshotted once and reused per version.

        Re-walking the dict-of-dicts ``arcs()`` generator on every world
        dominates ``sample_world`` on dense graphs; the snapshot is
        rebuilt only when :attr:`UncertainGraph.version` shows the graph
        mutated since it was taken.
        """
        version = self._graph.version
        if self._arc_list is None or self._arc_version != version:
            self._arc_list = list(self._graph.arcs())
            self._arc_version = version
        return self._arc_list

    def sample_world(self) -> List[Tuple[int, int]]:
        """Draw one world; returns the list of arcs that exist in it."""
        rng_random = self._rng.random
        return [
            (u, v)
            for u, v, p in self._arcs()
            if rng_random() < p
        ]

    def sample_world_adjacency(self) -> List[List[int]]:
        """Draw one world as a successor-list adjacency structure."""
        adjacency: List[List[int]] = [[] for _ in range(self._graph.num_nodes)]
        rng_random = self._rng.random
        for u, v, p in self._arcs():
            if rng_random() < p:
                adjacency[u].append(v)
        return adjacency

    def worlds(self, count: int) -> Iterable[List[Tuple[int, int]]]:
        """Generate *count* independent worlds."""
        for _ in range(count):
            yield self.sample_world()


def sample_reachable(
    graph: UncertainGraph,
    sources: Iterable[int],
    rng: random.Random,
    allowed: Optional[Set[int]] = None,
    max_hops: Optional[int] = None,
) -> Set[int]:
    """Nodes reachable from *sources* in one lazily-sampled world.

    This implements the paper's "sampling ... performed online, i.e.,
    combined with a BFS from the source set" (Section 7.1): each arc's
    existence coin is flipped the first time the BFS considers it.
    Within a single world a BFS considers each arc at most once, so the
    lazy scheme draws from exactly the same distribution as materializing
    the world up front.

    Parameters
    ----------
    allowed:
        Restricts the walk to a node set (the candidate-induced subgraph
        during RQ-tree-MC verification, paper Section 5.2).
    max_hops:
        Optional hop budget: only nodes within *max_hops* arcs of the
        sources (in the sampled world) are reported.  BFS visits nodes
        in hop order, so the first visit realises the world's true hop
        distance and the truncation is exact — this is the
        distance-constrained reachability of Jin et al. [20].
    """
    visited: Set[int] = set()
    frontier: deque = deque()
    for s in sources:
        if allowed is not None and s not in allowed:
            continue
        if s not in visited:
            visited.add(s)
            frontier.append(s)
    rng_random = rng.random
    depth = 0
    while frontier:
        if max_hops is not None and depth >= max_hops:
            break
        next_frontier: deque = deque()
        for u in frontier:
            for v, p in graph.successors(u).items():
                if v in visited:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                if rng_random() < p:
                    visited.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
        depth += 1
    return visited


class ReachabilityFrequencyEstimator:
    """Tallies how often each node is reached across sampled worlds.

    The estimate ``count[t] / K`` is an unbiased estimator of
    ``R(S, t)`` (paper, Eq. 2).  Thresholding the counts at ``eta * K``
    answers a reliability-search query the way the MC-Sampling baseline
    does.

    Parameters
    ----------
    backend:
        ``"python"`` runs the reference lazy-BFS sampler world by
        world; ``"numpy"`` runs the batched CSR kernel of
        :mod:`repro.accel.mc_kernel`; ``"auto"`` (default) picks numpy
        above :data:`repro.accel.AUTO_NODE_THRESHOLD` effective nodes.
        Both backends are deterministic per seed and draw from the same
        distribution, but their concrete samples differ for a given
        seed (they consume the random stream in different orders).

    Failure behaviour: when ``backend="auto"`` resolved to numpy and the
    kernel raises (a defect, or an injected fault), the estimator logs a
    warning on the ``repro.resilience`` logger and re-runs the failed
    batch — and everything after it — on the Python reference path.
    The Python RNG is seeded at construction and untouched by numpy
    attempts, so a fallback run is byte-identical to one that requested
    ``backend="python"`` up front.  An explicit ``backend="numpy"``
    request propagates the failure instead.

    *coin_source* (a :class:`repro.accel.coins.CoinBlock`) makes the
    numpy path read its packed arc coins from a shared block instead of
    drawing privately — the serving layer's cross-query world batching.
    The block replays the exact bits a private ``default_rng(seed)``
    draw would produce, so results are unchanged; on the python path
    (including fallback after a kernel failure) it is ignored, which is
    safe because the python RNG never shared anything to begin with.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        seed: Optional[int] = None,
        allowed: Optional[Set[int]] = None,
        max_hops: Optional[int] = None,
        backend: str = "auto",
        coin_source=None,
        lanes=None,
    ) -> None:
        self._graph = graph
        self._sources = list(sources)
        self._allowed = allowed
        self._max_hops = max_hops
        self._lanes = lanes
        effective_nodes = (
            graph.num_nodes
            if allowed is None
            else min(graph.num_nodes, len(allowed))
        )
        self._requested_backend = backend
        self._backend = resolve_backend(backend, effective_nodes)
        self._coin_source = coin_source
        self._rng = random.Random(seed)
        if self._backend == "numpy":
            import numpy

            self._np_rng = numpy.random.default_rng(seed)
        self._counts: Counter = Counter()
        self._num_worlds = 0
        self._fallbacks = 0

    @property
    def num_worlds(self) -> int:
        """Number of worlds sampled so far."""
        return self._num_worlds

    @property
    def backend(self) -> str:
        """The resolved backend (``"python"`` or ``"numpy"``)."""
        return self._backend

    @property
    def fallbacks(self) -> int:
        """How many batches were retried on the Python reference path
        after a numpy-kernel failure (always 0 for explicit backends)."""
        return self._fallbacks

    def counts(self) -> Dict[int, int]:
        """Raw per-node hit counts accumulated so far (a copy)."""
        return dict(self._counts)

    def run(self, num_worlds: int) -> "ReachabilityFrequencyEstimator":
        """Sample *num_worlds* additional worlds, accumulating counts."""
        if self._backend == "numpy":
            try:
                batch = sample_reach_batch(
                    self._graph,
                    self._sources,
                    num_worlds,
                    self._np_rng,
                    allowed=self._allowed,
                    max_hops=self._max_hops,
                    coin_source=self._coin_source,
                    world_offset=self._num_worlds,
                    lanes=self._lanes,
                )
            except Exception as exc:
                if self._requested_backend != "auto":
                    raise
                # Degrade, don't die: auto promised "at least as good as
                # the seed code".  The Python RNG was seeded at
                # construction and never consumed by numpy attempts, so
                # from here on the run is byte-identical to a
                # backend="python" one.
                _LOGGER.warning(
                    "numpy sampling backend failed; falling back to the "
                    "python reference path",
                    extra={
                        "event": "backend_fallback",
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                        "worlds": num_worlds,
                        "fallback_backend": "python",
                    },
                )
                self._backend = "python"
                self._fallbacks += 1
            else:
                hit = batch.counts.nonzero()[0]
                self._counts.update(
                    dict(zip(hit.tolist(), batch.counts[hit].tolist()))
                )
                self._num_worlds += num_worlds
                return self
        counts = self._counts
        for _ in range(num_worlds):
            reached = sample_reachable(
                self._graph,
                self._sources,
                self._rng,
                self._allowed,
                max_hops=self._max_hops,
            )
            counts.update(reached)
        self._num_worlds += num_worlds
        return self

    def frequencies(self) -> Dict[int, float]:
        """Per-node empirical reachability frequencies."""
        if self._num_worlds == 0:
            return {}
        k = self._num_worlds
        return {node: count / k for node, count in self._counts.items()}

    def nodes_above(self, eta: float) -> Set[int]:
        """Nodes reached in at least ``ceil(eta * K)`` worlds.

        The paper counts a node as an answer when it is reachable "in a
        fraction of graph instances >= eta * K"; we use the same
        inclusive comparison on the raw counts to avoid floating-point
        drift.
        """
        if self._num_worlds == 0:
            return set()
        threshold = eta * self._num_worlds
        return {
            node
            for node, count in self._counts.items()
            if count >= threshold
        }
