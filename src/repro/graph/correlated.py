"""Correlated arc existence: the shared-fate model.

The paper's closing future-work item is "the case where arc
probabilities are not independent" (Section 9).  This module provides
the simplest useful departure from independence — a **shared-fate
(common-cause) model**:

* arcs are partitioned into *fate groups* (a physical trunk link shared
  by several logical links, a data source feeding several predicted
  interactions, a road segment shared by lanes);
* group ``g`` is *alive* independently with probability ``q(g)``;
* arc ``a`` in group ``g`` exists iff its group is alive **and** its own
  independent coin succeeds: ``Pr[a] = q(g) · p(a | alive)``.

Within a group, arc existences are positively correlated; across
groups everything is independent.  Ungrouped arcs behave exactly as in
the independent model.

Two facts matter for the RQ-tree:

* the **marginal graph** (:meth:`SharedFateModel.marginal_graph`) maps
  each arc to its marginal probability ``q(g) p(a)`` — an independent
  approximation that existing machinery can index;
* positive correlation makes the *independent* most-likely-path lower
  bound invalid in general (a path's arcs in one group succeed together
  more often than independence predicts — the bound direction is
  actually preserved for a single path within one group, but cut-based
  upper bounds can be violated).  The benchmark
  ``bench_correlation.py`` quantifies how the independence
  approximation degrades as correlation strengthens, which is the
  empirical groundwork for the paper's future-work direction.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import (
    EmptySourceSetError,
    GraphError,
    InvalidMethodError,
    InvalidProbabilityError,
)
from .uncertain import Arc, UncertainGraph

__all__ = ["SharedFateModel", "correlated_mc_search", "exact_correlated_reliability"]


class SharedFateModel:
    """An uncertain graph whose arcs share latent failure causes.

    Parameters
    ----------
    graph:
        Base uncertain graph; each arc's probability is interpreted as
        the *conditional* existence probability given its group is
        alive.
    group_of:
        Map from arcs ``(u, v)`` to group ids.  Arcs absent from the
        map are independent (their own coin only).
    group_probability:
        Map from group id to the group's alive-probability ``q(g)``.
        Every group referenced by *group_of* must be present.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        group_of: Dict[Arc, int],
        group_probability: Dict[int, float],
    ) -> None:
        for arc, group in group_of.items():
            u, v = arc
            if not graph.has_arc(u, v):
                raise GraphError(f"grouped arc {arc} is not in the graph")
            if group not in group_probability:
                raise GraphError(f"group {group} has no probability")
        for group, q in group_probability.items():
            if not 0.0 < q <= 1.0:
                raise InvalidProbabilityError(q, ("group", group))
        self.graph = graph
        self.group_of = dict(group_of)
        self.group_probability = dict(group_probability)

    @property
    def num_groups(self) -> int:
        """Number of declared fate groups."""
        return len(self.group_probability)

    def marginal_probability(self, u: int, v: int) -> float:
        """Marginal existence probability ``q(g) * p(a)`` of one arc."""
        p = self.graph.probability(u, v)
        group = self.group_of.get((u, v))
        if group is None:
            return p
        return self.group_probability[group] * p

    def marginal_graph(self) -> UncertainGraph:
        """The independent approximation: arcs at their marginals.

        Discards all correlation; useful for indexing with the existing
        RQ-tree machinery and as the comparison point in the
        correlation benchmark.
        """
        result = UncertainGraph(self.graph.num_nodes)
        for u, v, _ in self.graph.arcs():
            result.add_arc(u, v, self.marginal_probability(u, v))
        return result

    def sample_alive_groups(self, rng: random.Random) -> Set[int]:
        """Draw the latent layer: which groups are alive this world."""
        return {
            group
            for group, q in self.group_probability.items()
            if rng.random() < q
        }

    def sample_reachable(
        self,
        sources: Iterable[int],
        rng: random.Random,
        max_hops: Optional[int] = None,
    ) -> Set[int]:
        """Nodes reachable from *sources* in one correlated world.

        The latent group layer is drawn first (this is what couples the
        arcs); arc coins are then flipped lazily during the BFS exactly
        as in the independent sampler.
        """
        alive = self.sample_alive_groups(rng)
        group_of = self.group_of
        visited: Set[int] = set()
        frontier: deque = deque()
        for s in sources:
            if s not in visited:
                visited.add(s)
                frontier.append(s)
        rng_random = rng.random
        depth = 0
        while frontier:
            if max_hops is not None and depth >= max_hops:
                break
            next_frontier: deque = deque()
            for u in frontier:
                for v, p in self.graph.successors(u).items():
                    if v in visited:
                        continue
                    group = group_of.get((u, v))
                    if group is not None and group not in alive:
                        continue
                    if rng_random() < p:
                        visited.add(v)
                        next_frontier.append(v)
            frontier = next_frontier
            depth += 1
        return visited


def correlated_mc_search(
    model: SharedFateModel,
    sources: Sequence[int],
    eta: float,
    num_samples: int = 1000,
    seed: Optional[int] = None,
    method: str = "mc",
) -> Set[int]:
    """Monte-Carlo reliability search under the shared-fate model.

    The ground-truth method for correlated graphs: no independence
    assumption anywhere, cost ``O(K (n + m))`` like plain MC-Sampling.
    ``method`` exists for signature symmetry with the engine's query
    surface; only ``"mc"`` is valid here (the bound-based estimators
    assume independence), and anything else raises the same
    :class:`~repro.errors.InvalidMethodError` the engine would.
    """
    if method != "mc":
        raise InvalidMethodError(method, ("mc",))
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    rng = random.Random(seed)
    counts: Dict[int, int] = {}
    for _ in range(num_samples):
        for node in model.sample_reachable(source_list, rng):
            counts[node] = counts.get(node, 0) + 1
    threshold = eta * num_samples
    return {node for node, count in counts.items() if count >= threshold}


def exact_correlated_reliability(
    model: SharedFateModel,
    sources: Sequence[int],
    target: int,
) -> float:
    """Exact ``R(S, t)`` under shared fates, by double enumeration.

    Enumerates group-alive patterns and, within each, arc patterns —
    exponential in ``#groups + #arcs`` (limit 18 combined), a test
    oracle only.
    """
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    if target in source_list:
        return 1.0
    arcs = list(model.graph.arcs())
    groups = sorted(model.group_probability)
    if len(arcs) + len(groups) > 18:
        raise ValueError("exact correlated oracle limited to 18 coins")

    total = 0.0
    for group_mask in range(1 << len(groups)):
        group_prob = 1.0
        alive: Set[int] = set()
        for i, group in enumerate(groups):
            q = model.group_probability[group]
            if group_mask >> i & 1:
                group_prob *= q
                alive.add(group)
            else:
                group_prob *= 1.0 - q
        if group_prob == 0.0:
            continue
        # Arcs whose group is dead cannot exist; others keep their coin.
        live_arcs = [
            (u, v, p)
            for u, v, p in arcs
            if model.group_of.get((u, v)) is None
            or model.group_of[(u, v)] in alive
        ]
        for arc_mask in range(1 << len(live_arcs)):
            world_prob = group_prob
            adjacency: Dict[int, List[int]] = {}
            for i, (u, v, p) in enumerate(live_arcs):
                if arc_mask >> i & 1:
                    world_prob *= p
                    adjacency.setdefault(u, []).append(v)
                else:
                    world_prob *= 1.0 - p
            if world_prob == 0.0:
                continue
            # BFS reachability test.
            seen = set(source_list)
            queue = deque(source_list)
            reached = False
            while queue and not reached:
                u = queue.popleft()
                for v in adjacency.get(u, ()):
                    if v == target:
                        reached = True
                        break
                    if v not in seen:
                        seen.add(v)
                        queue.append(v)
            if reached:
                total += world_prob
    return min(1.0, total)
