"""What-if transformations of uncertain graphs.

Reliability analyses routinely ask counterfactuals — "what if every
link were 20 % less reliable?", "which part of the network is held
together by strong ties only?" — that reduce to graph transformations
followed by ordinary queries:

* :func:`scale_probabilities` — multiply every arc probability by a
  factor (clamped to (0, 1]); the link-degradation / hardening knob;
* :func:`power_probabilities` — raise probabilities to an exponent,
  the smooth sharpen/flatten transform (``p^k`` models ``k`` serial
  independent copies of each link);
* :func:`threshold_backbone` — keep only arcs with ``p >= tau`` (the
  certain-core extraction used in backbone analyses);
* :func:`make_undirected` — symmetrize by adding each arc's reverse
  (noisy-or if both directions exist);
* :func:`weighted_cascade` — replace probabilities with
  ``1 / in_degree(v)`` per *incoming* arc, the IC-model normalization
  of Kempe et al. [23] (the paper's Last.FM/WebGraph datasets use the
  out-degree flavour, implemented in the generators).

All transforms return new graphs; inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import GraphError
from .uncertain import UncertainGraph

__all__ = [
    "condition_graph",
    "map_probabilities",
    "scale_probabilities",
    "power_probabilities",
    "threshold_backbone",
    "make_undirected",
    "weighted_cascade",
]

#: Smallest probability a transform will emit (arcs cannot carry 0).
_MIN_PROBABILITY = 1e-9


def condition_graph(
    graph: UncertainGraph,
    present: "Sequence[tuple]" = (),
    absent: "Sequence[tuple]" = (),
) -> UncertainGraph:
    """Condition on observed arc states (evidence queries).

    Monitoring scenarios observe some arcs directly — a link is known
    up or known down — and ask reliability questions *given* that
    evidence.  Under independence, conditioning simply rewrites the
    observed arcs: known-present arcs get probability 1, known-absent
    arcs are deleted, everything else is untouched.  Query the returned
    graph with any engine to get conditional reliabilities.

    Parameters
    ----------
    present / absent:
        Iterables of ``(u, v)`` arcs observed to exist / not exist.
        Arcs must be present in the graph; an arc cannot appear in both
        lists.
    """
    present_set = {(u, v) for u, v in present}
    absent_set = {(u, v) for u, v in absent}
    overlap = present_set & absent_set
    if overlap:
        raise GraphError(
            f"arcs observed both present and absent: {sorted(overlap)}"
        )
    for u, v in present_set | absent_set:
        if not graph.has_arc(u, v):
            raise GraphError(f"observed arc ({u}, {v}) is not in the graph")
    result = UncertainGraph(graph.num_nodes)
    for u, v, p in graph.arcs():
        if (u, v) in absent_set:
            continue
        result.add_arc(u, v, 1.0 if (u, v) in present_set else p)
    return result


def map_probabilities(
    graph: UncertainGraph, mapper: Callable[[float], float]
) -> UncertainGraph:
    """Apply *mapper* to every arc probability (generic transform).

    Results are clamped into ``[_MIN_PROBABILITY, 1]``; a mapper
    returning 0 or less drops to the floor rather than deleting the arc
    (use :func:`threshold_backbone` for deletion semantics).
    """
    result = UncertainGraph(graph.num_nodes)
    for u, v, p in graph.arcs():
        q = mapper(p)
        q = min(1.0, max(_MIN_PROBABILITY, q))
        result.add_arc(u, v, q)
    return result


def scale_probabilities(graph: UncertainGraph, factor: float) -> UncertainGraph:
    """Multiply every probability by *factor* (degrade < 1 < harden)."""
    if factor <= 0:
        raise GraphError(f"scale factor must be positive, got {factor}")
    return map_probabilities(graph, lambda p: p * factor)


def power_probabilities(graph: UncertainGraph, exponent: float) -> UncertainGraph:
    """Raise every probability to *exponent*.

    ``exponent > 1`` weakens uncertain arcs faster than near-certain
    ones (serial-composition semantics); ``0 < exponent < 1`` flattens
    towards certainty.
    """
    if exponent <= 0:
        raise GraphError(f"exponent must be positive, got {exponent}")
    return map_probabilities(graph, lambda p: p ** exponent)


def threshold_backbone(graph: UncertainGraph, tau: float) -> UncertainGraph:
    """Keep only arcs with probability at least *tau*.

    The deterministic "strong backbone": reachability in the backbone
    lower-bounds reliability-search answers at any ``eta <= tau``
    (every backbone path has probability >= tau^length — a coarse but
    free screen used in tests and examples).
    """
    if not 0.0 < tau <= 1.0:
        raise GraphError(f"tau must be in (0, 1], got {tau}")
    result = UncertainGraph(graph.num_nodes)
    for u, v, p in graph.arcs():
        if p >= tau:
            result.add_arc(u, v, p)
    return result


def make_undirected(graph: UncertainGraph) -> UncertainGraph:
    """Symmetrize: every arc gains its reverse with the same probability.

    Antiparallel pairs that already exist are noisy-or merged by
    :meth:`UncertainGraph.add_arc`, so the result is reciprocal and at
    least as reliable in both directions as the input was in either.
    """
    result = UncertainGraph(graph.num_nodes)
    for u, v, p in graph.arcs():
        result.add_arc(u, v, p)
        result.add_arc(v, u, p)
    return result


def weighted_cascade(graph: UncertainGraph) -> UncertainGraph:
    """Kempe et al.'s weighted-cascade normalization: ``p = 1/indeg(v)``.

    Keeps the topology, replaces every arc's probability with the
    reciprocal of its *head's* in-degree — each node is equally easy to
    influence overall, split evenly among its influencers.
    """
    result = UncertainGraph(graph.num_nodes)
    for u, v, _ in graph.arcs():
        result.add_arc(u, v, 1.0 / graph.in_degree(v))
    return result
