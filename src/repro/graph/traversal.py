"""Deterministic traversals over uncertain graphs.

These routines ignore arc probabilities and treat the graph as a plain
directed graph: they answer the question "which nodes are reachable in the
deterministic graph that contains *all* arcs of G".  They are used by

* the candidate-generation periphery computation (paper, Observation 3),
* diameter estimation for the RHT baseline and workload generation,
* sanity/invariant checks in the test-suite.

Probability-aware reachability lives in :mod:`repro.graph.sampling` (one
possible world at a time) and :mod:`repro.reliability` (estimators).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .uncertain import UncertainGraph

__all__ = [
    "bfs_reachable",
    "bfs_layers",
    "bfs_distances",
    "reachable_within",
    "weakly_connected_components",
    "strongly_connected_components",
    "estimate_diameter",
    "induced_ball",
]


def bfs_reachable(
    graph: UncertainGraph,
    sources: Iterable[int],
    allowed: Optional[Set[int]] = None,
) -> Set[int]:
    """All nodes reachable from *sources* following directed arcs.

    Parameters
    ----------
    graph:
        The uncertain graph (probabilities ignored).
    sources:
        Seed nodes; they are always included in the result.
    allowed:
        If given, the traversal never leaves this node set (used to
        restrict reachability to a candidate-induced subgraph).
    """
    visited: Set[int] = set()
    queue: deque = deque()
    for s in sources:
        if allowed is not None and s not in allowed:
            continue
        if s not in visited:
            visited.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        for v in graph.successors(u):
            if v in visited:
                continue
            if allowed is not None and v not in allowed:
                continue
            visited.add(v)
            queue.append(v)
    return visited


def bfs_layers(
    graph: UncertainGraph, sources: Iterable[int]
) -> List[List[int]]:
    """Breadth-first layers ``[L0, L1, ...]`` from the source set.

    ``L0`` is the (deduplicated) source list; ``Lk`` contains nodes at
    directed hop-distance exactly *k*.
    """
    seen: Set[int] = set()
    frontier: List[int] = []
    for s in sources:
        if s not in seen:
            seen.add(s)
            frontier.append(s)
    layers: List[List[int]] = []
    while frontier:
        layers.append(frontier)
        next_frontier: List[int] = []
        for u in frontier:
            for v in graph.successors(u):
                if v not in seen:
                    seen.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return layers


def bfs_distances(
    graph: UncertainGraph, sources: Iterable[int]
) -> Dict[int, int]:
    """Hop distances from the source set to every reachable node."""
    distances: Dict[int, int] = {}
    for depth, layer in enumerate(bfs_layers(graph, sources)):
        for node in layer:
            distances[node] = depth
    return distances


def reachable_within(
    graph: UncertainGraph, sources: Iterable[int], max_hops: int
) -> Set[int]:
    """Nodes reachable from *sources* using at most *max_hops* arcs."""
    reached: Set[int] = set()
    for depth, layer in enumerate(bfs_layers(graph, sources)):
        if depth > max_hops:
            break
        reached.update(layer)
    return reached


def weakly_connected_components(graph: UncertainGraph) -> List[Set[int]]:
    """Connected components of the undirected view of the graph."""
    unseen = set(graph.nodes())
    components: List[Set[int]] = []
    while unseen:
        root = next(iter(unseen))
        component: Set[int] = {root}
        queue = deque([root])
        unseen.discard(root)
        while queue:
            u = queue.popleft()
            for v in graph.successors(u):
                if v in unseen:
                    unseen.discard(v)
                    component.add(v)
                    queue.append(v)
            for v in graph.predecessors(u):
                if v in unseen:
                    unseen.discard(v)
                    component.add(v)
                    queue.append(v)
        components.append(component)
    return components


def strongly_connected_components(graph: UncertainGraph) -> List[Set[int]]:
    """Strongly connected components (iterative Tarjan).

    Implemented without recursion so that deep path graphs do not hit the
    interpreter recursion limit.
    """
    n = graph.num_nodes
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[Set[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each frame is (node, iterator over successors).
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            u, it = work[-1]
            advanced = False
            for v in it:
                if index_of[v] == -1:
                    index_of[v] = lowlink[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = True
                    work.append((v, iter(graph.successors(v))))
                    advanced = True
                    break
                if on_stack[v]:
                    lowlink[u] = min(lowlink[u], index_of[v])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[u])
            if lowlink[u] == index_of[u]:
                component: Set[int] = set()
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.add(w)
                    if w == u:
                        break
                components.append(component)
    return components


def estimate_diameter(
    graph: UncertainGraph,
    num_probes: int = 16,
    rng: Optional["random.Random"] = None,
) -> int:
    """Estimate the directed diameter by double-sweep BFS probing.

    Runs BFS from *num_probes* random start nodes and from the farthest
    node discovered by each probe, returning the largest finite
    eccentricity observed.  This is the standard cheap lower-bound
    estimator; the RHT baseline (paper, Section 7.1) only needs a
    representative hop bound, not the exact diameter.
    """
    import random as _random

    if graph.num_nodes == 0:
        return 0
    rng = rng or _random.Random(0)
    best = 0
    nodes = list(graph.nodes())
    for _ in range(num_probes):
        start = rng.choice(nodes)
        layers = bfs_layers(graph, [start])
        if len(layers) - 1 > best:
            best = len(layers) - 1
        if layers and layers[-1]:
            far = layers[-1][0]
            layers2 = bfs_layers(graph, [far])
            if len(layers2) - 1 > best:
                best = len(layers2) - 1
    return best


def induced_ball(
    graph: UncertainGraph, center: int, radius: int
) -> Set[int]:
    """Nodes within *radius* hops of *center*, ignoring arc direction.

    Used by the multi-source workload generator (paper, Section 7.1):
    query nodes are drawn from a subgraph of bounded diameter, which we
    realise as an undirected ball of radius ``d // 2 + 1``.
    """
    ball = {center}
    frontier = [center]
    for _ in range(radius):
        next_frontier: List[int] = []
        for u in frontier:
            for v in graph.successors(u):
                if v not in ball:
                    ball.add(v)
                    next_frontier.append(v)
            for v in graph.predecessors(u):
                if v not in ball:
                    ball.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
        if not frontier:
            break
    return ball
