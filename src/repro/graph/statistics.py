"""Descriptive statistics over uncertain graphs.

Summaries used by the CLI ``stats`` command, the Figure 3 benchmark,
and the dataset documentation: degree distributions, arc-probability
histograms, expected-graph measures (expected number of arcs, expected
degree), and a one-stop :func:`summarize` report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .uncertain import UncertainGraph

__all__ = [
    "GraphSummary",
    "degree_histogram",
    "probability_histogram",
    "expected_num_arcs",
    "expected_out_degree",
    "summarize",
]


def degree_histogram(
    graph: UncertainGraph, direction: str = "out"
) -> Dict[int, int]:
    """Histogram ``degree -> #nodes`` for out/in/total degree."""
    if direction not in ("out", "in", "total"):
        raise ValueError(
            f"direction must be 'out', 'in' or 'total', got {direction!r}"
        )
    histogram: Dict[int, int] = {}
    for u in graph.nodes():
        if direction == "out":
            d = graph.out_degree(u)
        elif direction == "in":
            d = graph.in_degree(u)
        else:
            d = graph.degree(u)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def probability_histogram(
    graph: UncertainGraph, num_bins: int = 10
) -> List[Tuple[float, float, int]]:
    """Arc-probability histogram as ``(lo, hi, count)`` bins over (0, 1]."""
    if num_bins <= 0:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    counts = [0] * num_bins
    for _, _, p in graph.arcs():
        index = min(num_bins - 1, int(p * num_bins))
        counts[index] += 1
    width = 1.0 / num_bins
    return [
        (i * width, (i + 1) * width, counts[i]) for i in range(num_bins)
    ]


def expected_num_arcs(graph: UncertainGraph) -> float:
    """Expected number of arcs of a sampled world: ``Σ p(a)``."""
    return graph.total_probability_mass()


def expected_out_degree(graph: UncertainGraph) -> float:
    """Mean expected out-degree over all nodes."""
    if graph.num_nodes == 0:
        return 0.0
    return expected_num_arcs(graph) / graph.num_nodes


@dataclass
class GraphSummary:
    """A compact statistical fingerprint of an uncertain graph."""

    num_nodes: int
    num_arcs: int
    expected_arcs: float
    mean_probability: float
    median_probability: float
    max_out_degree: int
    isolated_nodes: int
    reciprocity: float  # fraction of arcs whose reverse also exists

    def as_rows(self) -> List[Tuple[str, object]]:
        """Rows for :func:`repro.eval.reporting.format_table`."""
        return [
            ("nodes", self.num_nodes),
            ("arcs", self.num_arcs),
            ("expected world arcs", self.expected_arcs),
            ("mean arc probability", self.mean_probability),
            ("median arc probability", self.median_probability),
            ("max out-degree", self.max_out_degree),
            ("isolated nodes", self.isolated_nodes),
            ("reciprocity", self.reciprocity),
        ]


def summarize(graph: UncertainGraph) -> GraphSummary:
    """Compute the full :class:`GraphSummary` for *graph*."""
    probabilities = sorted(p for _, _, p in graph.arcs())
    m = len(probabilities)
    if m:
        mean_p = sum(probabilities) / m
        median_p = (
            probabilities[m // 2]
            if m % 2
            else (probabilities[m // 2 - 1] + probabilities[m // 2]) / 2.0
        )
    else:
        mean_p = 0.0
        median_p = 0.0
    reciprocal = sum(
        1 for u, v, _ in graph.arcs() if graph.has_arc(v, u)
    )
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_arcs=m,
        expected_arcs=expected_num_arcs(graph),
        mean_probability=mean_p,
        median_probability=median_p,
        max_out_degree=max(
            (graph.out_degree(u) for u in graph.nodes()), default=0
        ),
        isolated_nodes=sum(
            1 for u in graph.nodes() if graph.degree(u) == 0
        ),
        reciprocity=reciprocal / m if m else 0.0,
    )
