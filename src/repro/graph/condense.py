"""Certain-core condensation: a lossless pre-processing contraction.

Arcs with ``p = 1`` always exist, so nodes that are *strongly connected
through certain arcs only* are mutually reachable in every possible
world — for any reachability event they behave as a single node.
Contracting each such certain SCC yields a smaller uncertain graph with
**identical reliability semantics**:

* ``R(S, t)`` in the original equals ``R(rep(S), rep(t))`` in the
  condensation (``rep`` maps a node to its super-node), because every
  world of the original projects to a world of the condensation with
  the same reachability relation between super-nodes and vice versa;
* consequently ``RS(S, η)`` can be answered on the condensation and
  expanded back through the representative map.

Graphs derived from deterministic backbones plus uncertain periphery
(road networks with toll-road certainty, device networks with wired
cores) condense substantially; purely probabilistic graphs are
untouched (every certain SCC is a singleton).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .traversal import strongly_connected_components
from .uncertain import UncertainGraph

__all__ = ["Condensation", "contract_certain_sccs"]


@dataclass
class Condensation:
    """Result of :func:`contract_certain_sccs`.

    Attributes
    ----------
    graph:
        The condensed uncertain graph over super-nodes ``0..K-1``.
    representative_of:
        ``representative_of[v]`` is the super-node of original node ``v``.
    members_of:
        ``members_of[c]`` lists the original nodes inside super-node ``c``.
    """

    graph: UncertainGraph
    representative_of: List[int]
    members_of: List[List[int]]

    @property
    def num_contracted(self) -> int:
        """How many original nodes were absorbed into larger super-nodes."""
        return sum(len(m) - 1 for m in self.members_of if len(m) > 1)

    def project_sources(self, sources: Sequence[int]) -> List[int]:
        """Map original source nodes to condensation super-nodes."""
        return sorted({self.representative_of[s] for s in sources})

    def expand_answer(self, answer: Set[int]) -> Set[int]:
        """Map a condensation answer set back to original node ids."""
        expanded: Set[int] = set()
        for super_node in answer:
            expanded.update(self.members_of[super_node])
        return expanded


def contract_certain_sccs(graph: UncertainGraph) -> Condensation:
    """Contract the strongly connected components of the ``p = 1`` arcs.

    Arcs between two merged nodes disappear (any internal arc with
    ``p < 1`` is redundant: the certain cycle already connects them);
    parallel arcs between distinct super-nodes noisy-or merge, which is
    exact under independence.
    """
    # Certain subgraph.
    certain = UncertainGraph(graph.num_nodes)
    for u, v, p in graph.arcs():
        if p >= 1.0:
            certain.add_arc(u, v, 1.0)
    components = strongly_connected_components(certain)

    representative_of = [0] * graph.num_nodes
    members_of: List[List[int]] = []
    for component in components:
        index = len(members_of)
        members = sorted(component)
        members_of.append(members)
        for node in members:
            representative_of[node] = index

    condensed = UncertainGraph(len(members_of))
    for u, v, p in graph.arcs():
        cu = representative_of[u]
        cv = representative_of[v]
        if cu != cv:
            condensed.add_arc(cu, cv, p)
    return Condensation(
        graph=condensed,
        representative_of=representative_of,
        members_of=members_of,
    )
