"""Live engines: the write path over the single and sharded read paths.

:class:`LiveRQTreeEngine` pairs one
:class:`~repro.core.maintenance.DynamicRQTreeEngine` (index repair on
the master graph) with an :class:`~repro.live.epochs.EpochStore`
(query isolation): every admitted batch bumps the epoch, publishes a
copy-on-write snapshot, and queries always run against the snapshot of
the epoch they were admitted on.

:class:`LiveShardedEngine` extends
:class:`~repro.shard.engine.ShardedRQTreeEngine` with the same
contract across the shard boundary:

* ``apply`` admits a batch under the apply lock, mutates the master
  graph, rebuilds per-shard payloads at the new epoch (fresh shm
  segments), refreshes the supervisor's respawn recipes, streams each
  shard its local-id update slice (workers repair their subtree
  clusters in place and hot-swap shm attachments; the single-threaded
  worker's ack doubles as the old-epoch drain barrier), and only then
  publishes the new snapshot — so a query admitted mid-apply still
  reads its own epoch end to end, with any cross-epoch shard response
  demoted to candidates and recomputed by gateway refinement;
* ``rebalance`` builds a complete new shard topology (plan, payloads,
  workers) at the *current* epoch while the old one keeps serving,
  then swaps the routing pair atomically, drains the old clients, and
  closes them — zero failed queries by construction;
* ``maybe_rebalance`` consults :class:`~repro.live.rebalance.\
LoadWatermarks` against per-shard sizes and queue depths.

Update streaming tolerates shard failure: a dead worker misses its
slice, but its respawn payload was refreshed *before* streaming, so
the replacement boots directly onto the new epoch's graph (slices are
exact-set/delete-absent-no-op, hence idempotent against a worker that
already carries the batch).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.engine import QueryResult, RQTreeEngine
from ..core.maintenance import DynamicRQTreeEngine
from ..errors import ShardUnavailableError
from ..graph.uncertain import UncertainGraph
from ..shard.engine import ShardedRQTreeEngine
from ..shard.plan import build_shard_plan
from ..shard.runtime import build_shard_payload
from ..shard.worker import InlineShardClient, ProcessShardClient
from .epochs import EpochStore
from .rebalance import LoadWatermarks
from .updates import UpdateLog, apply_to_graph, shard_slices

__all__ = ["LiveRQTreeEngine", "LiveShardedEngine"]

#: How long a rebalance waits for an old client's in-flight sub-queries
#: to drain before closing it anyway (queries route to the new topology
#: the instant the swap lands; this only bounds straggler cleanup).
_DRAIN_TIMEOUT_SECONDS = 30.0


class LiveRQTreeEngine:
    """A single-process engine that accepts updates while serving.

    ::

        live = LiveRQTreeEngine.build(graph, seed=7)
        epoch = live.apply([("set", 3, 9, 0.8), ("delete", 1, 2)])
        result = live.query([3], eta=0.5)     # runs on epoch's snapshot
        assert result.epoch == epoch
    """

    def __init__(
        self,
        maintainer: DynamicRQTreeEngine,
        store: Optional[EpochStore] = None,
        log: Optional[UpdateLog] = None,
    ) -> None:
        self._maintainer = maintainer
        self.graph = maintainer.graph
        self.store = store or EpochStore()
        self.log = log or UpdateLog()
        self._apply_lock = threading.Lock()
        self._closed = False
        self.store.publish(self.graph.copy(preserve_versioning=True))

    @classmethod
    def build(
        cls,
        graph: UncertainGraph,
        damage_threshold: float = 0.25,
        seed: int = 0,
        strategy: str = "multilevel",
        branching: int = 2,
        max_imbalance: float = 0.1,
        min_rebuild_size: int = 8,
    ) -> "LiveRQTreeEngine":
        """Build the index, then wrap it with the update plane."""
        return cls(
            DynamicRQTreeEngine(
                graph,
                damage_threshold=damage_threshold,
                seed=seed,
                strategy=strategy,
                branching=branching,
                max_imbalance=max_imbalance,
                min_rebuild_size=min_rebuild_size,
            )
        )

    @property
    def maintainer(self) -> DynamicRQTreeEngine:
        return self._maintainer

    @property
    def epoch(self) -> int:
        return self.graph.epoch

    @property
    def tree(self):
        """The maintained RQ-tree (valid for every epoch's snapshot)."""
        return self._maintainer.tree

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def apply(self, ops: Iterable[object]) -> int:
        """Admit one update batch; returns the new epoch.

        Serialized under the apply lock: the batch is validated and
        logged, applied to the master graph through the maintainer
        (accruing cluster damage, possibly repairing a subtree), and a
        copy-on-write snapshot of the result is published.  Queries in
        flight keep their admission epoch's snapshot; queries admitted
        after this call see the new epoch.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        registry = self._metrics()
        started = time.perf_counter()
        with self._apply_lock:
            epoch, updates = self.log.append(ops)
            self._maintainer.apply(updates)
            self.graph.set_epoch(epoch)
            self.store.publish(self.graph.copy(preserve_versioning=True))
        registry.counter("live.updates").inc()
        registry.counter("live.ops_applied").inc(len(updates))
        registry.histogram("live.apply_seconds").observe(
            time.perf_counter() - started
        )
        return epoch

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def query(self, *args, **kwargs) -> QueryResult:
        """Answer a query against the current epoch's frozen snapshot.

        The per-epoch query engine (a cheap :class:`RQTreeEngine` over
        the snapshot graph, sharing the maintainer's current tree — any
        partition is a correct index for any epoch) is built lazily and
        cached on the snapshot, so concurrent queries on one epoch
        share a bounds cache.
        """
        with self.store.lease() as lease:
            snapshot = lease.snapshot
            engine = snapshot.engine
            if engine is None:
                engine = RQTreeEngine(
                    lease.graph,
                    self._maintainer.tree,
                    flow_engine=self._maintainer.engine.flow_engine,
                )
                snapshot.engine = engine
            return engine.query(*args, **kwargs)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.store.close()

    def __enter__(self) -> "LiveRQTreeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def _metrics():
        from ..service.metrics import get_registry

        return get_registry()


class LiveShardedEngine(ShardedRQTreeEngine):
    """The sharded gateway's write path: streaming updates + rebalance.

    Construction mirrors :meth:`ShardedRQTreeEngine.build` (same
    keywords); the live engine adds ``apply`` / ``rebalance`` /
    ``maybe_rebalance`` on top and pins every query to its admission
    epoch through the inherited scatter/refine pipeline.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.store = EpochStore()
        self.log = UpdateLog()
        self.watermarks: Optional[LoadWatermarks] = None
        self._apply_lock = threading.Lock()
        # Epoch 0: snapshot the pristine graph.  The construction-time
        # shm segments stay engine-owned (self._segments) while their
        # topology is current; each apply hands the outgoing epoch's
        # segments to the outgoing snapshot (EpochStore.adopt), whose
        # drain then unlinks them.
        self.store.publish(self.graph.copy(preserve_versioning=True))

    @classmethod
    def build(cls, graph: UncertainGraph, **kwargs) -> "LiveShardedEngine":
        watermarks = kwargs.pop("watermarks", None)
        engine = super().build(graph, **kwargs)
        engine.watermarks = watermarks
        return engine

    # ------------------------------------------------------------------
    # Epoch pinning (overrides the base engine's frozen no-op lease)
    # ------------------------------------------------------------------
    def _lease_epoch(self):
        return self.store.lease()

    @property
    def epoch(self) -> int:
        return self.graph.epoch

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def apply(self, ops: Iterable[object]) -> int:
        """Admit one update batch across the whole serving stack.

        Order matters (see the module docstring): master mutation and
        payload rebuild happen first, the supervisor's respawn recipes
        are refreshed *before* any worker hears about the batch (a
        crash mid-stream then respawns directly onto the new epoch),
        slices stream to every worker (acks prove the old epoch
        drained worker-side), and the snapshot publishes last — so no
        query can be admitted at the new epoch before every worker
        can answer from it.
        """
        if self._closed:
            raise ShardUnavailableError(-1, "engine is closed")
        registry = self._registry()
        started = time.perf_counter()
        with self._apply_lock:
            epoch, updates = self.log.append(ops)
            apply_to_graph(self.graph, updates)
            self.graph.set_epoch(epoch)
            plan, clients, supervisor = self._routing()
            payloads, new_segments = self._build_payloads(plan, epoch)
            if supervisor is not None:
                for shard_id, payload in enumerate(payloads):
                    supervisor.update_payload(shard_id, payload)
            slices, frontier = shard_slices(updates, plan)
            if frontier:
                registry.counter("live.frontier_ops").inc(len(frontier))
            for shard_id in range(plan.num_shards):
                spec = {
                    "ops": slices.get(shard_id, []),
                    "epoch": epoch,
                    "shm": payloads[shard_id].get("shm"),
                }
                client = (
                    supervisor.client(shard_id)
                    if supervisor is not None
                    else clients[shard_id]
                )
                try:
                    client.apply_update(spec)
                except ShardUnavailableError:
                    # The worker missed its slice — but its respawn
                    # payload already carries the new epoch's graph, so
                    # recovery converges on the same state.
                    registry.counter("live.update_stream_failures").inc()
                    if supervisor is not None:
                        supervisor.report_failure(
                            shard_id, "update stream found the worker gone"
                        )
            # Hand the outgoing topology's segments to the outgoing
            # epoch, then publish: the old generation's shm lives
            # exactly as long as queries pinned to it.
            outgoing = self.store.current_epoch
            old_segments, self._segments = self._segments, new_segments
            if old_segments and outgoing is not None:
                self.store.adopt(outgoing, old_segments)
            self.store.publish(self.graph.copy(preserve_versioning=True))
        registry.counter("live.updates").inc()
        registry.counter("live.ops_applied").inc(len(updates))
        registry.histogram("live.apply_seconds").observe(
            time.perf_counter() - started
        )
        return epoch

    def _build_payloads(self, plan, epoch: int):
        """Fresh per-shard payloads for the current master graph."""
        payloads: List[Dict[str, object]] = []
        segments: List[str] = []
        for shard_id in range(plan.num_shards):
            payload = build_shard_payload(
                self.graph, plan, shard_id,
                seed=plan.seed,
                flow_engine=self.flow_engine,
                transport=self.transport,
                epoch=epoch,
            )
            if "shm" in payload:
                segments.append(payload["shm"]["name"])
            payloads.append(payload)
        return payloads, segments

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self,
        shards: int,
        start_timeout: float = 300.0,
        drain_timeout: float = _DRAIN_TIMEOUT_SECONDS,
    ) -> None:
        """Move to a *shards*-way topology with zero downtime.

        The entire new topology — plan, payloads, workers with built
        indexes — is constructed at the current epoch while the old one
        keeps answering every query.  Only then does the routing pair
        swap (atomic under the routing lock); queries that already
        snapshotted the old routing finish against the old clients,
        which are drained (in-flight count reaches zero) and closed.
        No query ever observes a half-built topology, so the failed- or
        stale-answer count of a mid-stream rebalance is zero by
        construction.
        """
        if self._closed:
            raise ShardUnavailableError(-1, "engine is closed")
        registry = self._registry()
        started = time.perf_counter()
        with self._apply_lock:
            epoch = self.graph.epoch
            new_plan = build_shard_plan(
                self.graph, shards, seed=self.plan.seed
            )
            payloads, new_segments = self._build_payloads(new_plan, epoch)
            new_clients: List[object] = []
            try:
                if self.mode == "process":
                    new_clients = [ProcessShardClient(p) for p in payloads]
                    for client in new_clients:
                        client.wait_ready(timeout=start_timeout)
                else:
                    new_clients = [InlineShardClient(p) for p in payloads]
            except BaseException:
                for client in new_clients:
                    try:
                        client.close()
                    except Exception:  # pragma: no cover - best effort
                        pass
                self._release_segments(new_segments)
                raise
            with self._routing_lock:
                old_clients = self._clients
                self.plan = new_plan
                self._clients = new_clients
            if self._supervisor is not None:
                self._supervisor.reconfigure(new_clients, payloads)
            old_segments, self._segments = self._segments, new_segments
            self._drain_and_close(old_clients, drain_timeout)
            self._release_segments(old_segments)
        registry.counter("live.rebalances").inc()
        registry.histogram("live.rebalance_seconds").observe(
            time.perf_counter() - started
        )

    def maybe_rebalance(self) -> Optional[int]:
        """Split shards when a load/size watermark trips.

        Returns the new shard count when a rebalance ran, else
        ``None`` (no watermarks configured, or none exceeded).
        """
        if self.watermarks is None:
            return None
        plan, clients, supervisor = self._routing()
        sizes = [len(members) for members in plan.shard_nodes]
        depths = []
        for shard_id in range(plan.num_shards):
            client = (
                supervisor.client(shard_id)
                if supervisor is not None
                else clients[shard_id]
            )
            depths.append(getattr(client, "queue_depth", 0))
        target = self.watermarks.proposed_shards(sizes, depths)
        if target is None:
            return None
        self.rebalance(target)
        return target

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        super().close()
        self.store.close()

    @staticmethod
    def _drain_and_close(clients: Sequence[object], timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for client in clients:
            while (
                getattr(client, "queue_depth", 0) > 0
                and getattr(client, "is_alive", lambda: False)()
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            try:
                client.close()
            except Exception:  # pragma: no cover - best effort
                pass

    @staticmethod
    def _release_segments(names: Sequence[str]) -> None:
        if not names:
            return
        from ..shard import shm

        for name in names:
            shm.registry.release(name)
