"""Epoch-versioned copy-on-write snapshots with leased lifetimes.

The update plane's isolation rule is simple: **a query runs against the
epoch it was admitted on, start to finish**.  The master graph mutates
under the apply lock; queries never touch it.  Instead,
:class:`EpochStore` keeps one frozen copy-on-write snapshot per
published epoch:

* ``publish(graph)`` registers the snapshot under ``graph.epoch`` and
  supersedes every older epoch;
* ``lease()`` hands a query the *current* snapshot and pins it: a
  superseded epoch survives exactly as long as queries admitted on it
  are still running;
* the last lease release of a superseded epoch frees it — dropping the
  graph copy and releasing any shared-memory segments that epoch
  published for its shard workers through the refcounted
  :class:`~repro.shard.shm.SegmentRegistry` (which unlinks on the last
  release, so ``/dev/shm`` never accumulates dead generations).

The store also owns the ``live.epoch`` gauge so operators can watch
the serving generation advance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph.uncertain import UncertainGraph

__all__ = ["EpochLease", "EpochSnapshot", "EpochStore"]


@dataclass
class EpochSnapshot:
    """One published generation: a frozen graph plus owned resources."""

    epoch: int
    graph: UncertainGraph
    #: Shared-memory segment names this epoch published (per-shard CSR
    #: payload segments); released when the snapshot is freed.
    segments: List[str] = field(default_factory=list)
    #: Per-epoch query engine slot (a cheap RQTreeEngine sharing the
    #: maintained tree), built lazily by LiveRQTreeEngine so concurrent
    #: queries on one epoch share a bounds cache.
    engine: Optional[object] = None
    leases: int = 0
    superseded: bool = False


class EpochLease:
    """A pinned snapshot; release it when the query finishes.

    Usable as a context manager.  ``graph`` and ``epoch`` stay valid —
    and the epoch's shm segments stay published — until release.
    """

    __slots__ = ("_store", "_snapshot", "_released")

    def __init__(self, store: "EpochStore", snapshot: EpochSnapshot) -> None:
        self._store = store
        self._snapshot = snapshot
        self._released = False

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    @property
    def graph(self) -> UncertainGraph:
        return self._snapshot.graph

    @property
    def snapshot(self) -> EpochSnapshot:
        return self._snapshot

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._store._release(self._snapshot)

    def __enter__(self) -> "EpochLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class EpochStore:
    """Registry of published epoch snapshots with drain-based cleanup."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: Dict[int, EpochSnapshot] = {}
        self._current: Optional[int] = None

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(
        self,
        graph: UncertainGraph,
        segments: Optional[List[str]] = None,
    ) -> EpochSnapshot:
        """Register *graph* (already stamped with its epoch) as current.

        Every older snapshot is marked superseded; those with no
        outstanding leases are freed immediately, the rest when their
        last lease drains.  Epochs must be published in increasing
        order (the apply lock serializes publishers).
        """
        snapshot = EpochSnapshot(
            epoch=graph.epoch,
            graph=graph,
            segments=list(segments or []),
        )
        to_free: List[EpochSnapshot] = []
        with self._lock:
            if self._current is not None and graph.epoch <= self._current:
                raise ValueError(
                    f"epoch {graph.epoch} already published "
                    f"(current is {self._current})"
                )
            self._snapshots[snapshot.epoch] = snapshot
            self._current = snapshot.epoch
            for old in self._snapshots.values():
                if old.epoch < snapshot.epoch and not old.superseded:
                    old.superseded = True
                    if old.leases == 0:
                        to_free.append(old)
        for old in to_free:
            self._free(old)
        self._metrics().gauge("live.epoch").set(snapshot.epoch)
        return snapshot

    def adopt(self, epoch: int, segments: List[str]) -> bool:
        """Attach segment names to an *existing* snapshot's lifetime.

        The sharded apply flow uses this to hand the outgoing epoch its
        own shm segments just before the new epoch is published: the
        old generation's segments must survive exactly as long as
        queries pinned to it, which is precisely the snapshot's
        lifetime.  Returns ``False`` (releasing the segments
        immediately) when the epoch is already gone.
        """
        with self._lock:
            snapshot = self._snapshots.get(epoch)
            if snapshot is not None:
                snapshot.segments.extend(segments)
                return True
        from ..shard import shm

        for name in segments:
            if shm.registry.release(name):
                self._metrics().counter("live.segments_released").inc()
        return False

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> Optional[int]:
        with self._lock:
            return self._current

    def lease(self, epoch: Optional[int] = None) -> EpochLease:
        """Pin the current (or a specific, still-held) epoch."""
        with self._lock:
            target = self._current if epoch is None else epoch
            snapshot = self._snapshots.get(target) if target is not None else None
            if snapshot is None:
                raise KeyError(
                    f"epoch {target!r} is not available "
                    f"(held: {sorted(self._snapshots)})"
                )
            snapshot.leases += 1
        return EpochLease(self, snapshot)

    def _release(self, snapshot: EpochSnapshot) -> None:
        with self._lock:
            snapshot.leases -= 1
            free = snapshot.superseded and snapshot.leases == 0
            if free:
                self._snapshots.pop(snapshot.epoch, None)
        if free:
            self._free(snapshot, pop=False)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def _free(self, snapshot: EpochSnapshot, pop: bool = True) -> None:
        if pop:
            with self._lock:
                self._snapshots.pop(snapshot.epoch, None)
        if snapshot.segments:
            from ..shard import shm

            for name in snapshot.segments:
                if shm.registry.release(name):
                    self._metrics().counter("live.segments_released").inc()
            snapshot.segments = []
        snapshot.engine = None
        self._metrics().counter("live.epochs_freed").inc()

    def held_epochs(self) -> List[int]:
        """Epochs still resident (current plus leased stragglers)."""
        with self._lock:
            return sorted(self._snapshots)

    def close(self) -> None:
        """Free every snapshot regardless of leases (engine shutdown)."""
        with self._lock:
            snapshots = list(self._snapshots.values())
            self._snapshots.clear()
            self._current = None
        for snapshot in snapshots:
            self._free(snapshot, pop=False)

    @staticmethod
    def _metrics():
        from ..service.metrics import get_registry

        return get_registry()
