"""The live update plane: epochs, streaming arc updates, rebalancing.

Everything built before this package serves a graph frozen at process
start.  :mod:`repro.live` adds the write path:

* :class:`UpdateLog` — batched arc updates (probability sets, inserts,
  deletes) admitted under a monotonic **epoch** counter;
* :class:`EpochStore` — copy-on-write snapshots per epoch with leased,
  refcounted lifetimes, so queries always run against the epoch they
  were admitted on while updates land on the master graph;
* :class:`LiveRQTreeEngine` — a single-process engine pairing
  :class:`~repro.core.maintenance.DynamicRQTreeEngine` (index repair)
  with the epoch store (query isolation);
* :class:`LiveShardedEngine` — the sharded gateway's write path:
  per-shard update slices streamed to workers (which repair their
  subtree clusters in place and hot-swap shm attachments), epoch-tagged
  scatter requests with stale-response demotion, and zero-downtime
  shard rebalancing through the supervisor's warm-standby machinery.

The parity contract (ROADMAP): after any update stream, answers match a
cold rebuild bit-for-bit on ``lb``/``lb+``/``exact`` and within
sampling bounds on ``mc``/``rss``/``lazy``, at every shard count.  The
structural fact that makes this cheap is the one
:mod:`repro.core.maintenance` is built on — *any hierarchical partition
is a correct RQ-tree* — so an updated index is never wrong, only
possibly less selective, and ``lb`` answers are tree-independent.
"""

from .updates import ArcUpdate, UpdateLog, apply_to_graph, shard_slices
from .epochs import EpochLease, EpochSnapshot, EpochStore
from .engine import LiveRQTreeEngine, LiveShardedEngine
from .rebalance import LoadWatermarks

__all__ = [
    "ArcUpdate",
    "EpochLease",
    "EpochSnapshot",
    "EpochStore",
    "LiveRQTreeEngine",
    "LiveShardedEngine",
    "LoadWatermarks",
    "UpdateLog",
    "apply_to_graph",
    "shard_slices",
]
