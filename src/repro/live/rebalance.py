"""Watermark policy for zero-downtime shard rebalancing.

The rebalancer is deliberately dumb: it watches two cheap signals —
per-shard node counts (size skew after an update stream grows one
region of the graph) and per-shard client queue depth (load skew) —
and when either crosses its watermark it asks
:meth:`~repro.live.engine.LiveShardedEngine.rebalance` for a new
partition with more shards.  All correctness lives in the rebalance
mechanism itself (build-then-swap at a pinned epoch); this module only
decides *when* it is worth paying for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["LoadWatermarks"]


@dataclass(frozen=True)
class LoadWatermarks:
    """Thresholds that trigger a shard split.

    ``max_nodes_per_shard`` — a shard owning more nodes than this is
    oversized (0 disables the size check).
    ``max_queue_depth`` — a shard whose client has more queued requests
    than this is hot (0 disables the load check).
    ``min_shards``/``max_shards`` — bounds on the shard count the
    rebalancer may choose; ``max_shards`` caps growth so a pathological
    stream cannot fork unbounded workers.
    """

    max_nodes_per_shard: int = 0
    max_queue_depth: int = 0
    min_shards: int = 1
    max_shards: int = 16

    def __post_init__(self) -> None:
        if self.max_nodes_per_shard < 0:
            raise ValueError(
                f"max_nodes_per_shard must be >= 0, "
                f"got {self.max_nodes_per_shard}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= "
                f"min_shards ({self.min_shards})"
            )

    def proposed_shards(
        self,
        shard_sizes: Sequence[int],
        queue_depths: Sequence[int],
    ) -> Optional[int]:
        """Return a new shard count, or ``None`` if no watermark tripped.

        The proposal doubles the shard count (clamped to
        ``max_shards``), matching the recursive-bisection partitioner's
        natural grain.  Returns ``None`` when already at ``max_shards``.
        """
        current = max(len(shard_sizes), self.min_shards)
        oversized = self.max_nodes_per_shard > 0 and any(
            size > self.max_nodes_per_shard for size in shard_sizes
        )
        hot = self.max_queue_depth > 0 and any(
            depth > self.max_queue_depth for depth in queue_depths
        )
        if not (oversized or hot):
            return None
        target = min(max(current * 2, self.min_shards), self.max_shards)
        if target <= current:
            return None
        return target
