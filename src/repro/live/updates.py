"""Batched arc updates and the epoch-numbered update log.

An :class:`ArcUpdate` is one of three operations on one directed arc:

* ``"set"`` — the arc's probability is now exactly ``p`` (inserting the
  arc if absent);
* ``"insert"`` — alias of ``"set"`` kept for wire-level intent (the
  caller believes the arc is new); identical semantics, so replaying a
  slice against a shard that already saw part of the batch can never
  noisy-or an update into the wrong probability;
* ``"delete"`` — the arc is gone (a no-op when already absent).

Updates are admitted in *batches*: :meth:`UpdateLog.append` assigns the
batch the next epoch number, and every consumer of the log — the
gateway's master graph, each shard's
:class:`~repro.core.maintenance.DynamicRQTreeEngine`, a cold-rebuild
parity check — applies whole batches in epoch order.  Determinism is
the point: the same batch sequence applied anywhere produces the same
graph, which is what the update-parity suite asserts.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidProbabilityError
from ..graph.uncertain import UncertainGraph

__all__ = ["ArcUpdate", "UpdateLog", "apply_to_graph", "shard_slices"]

#: The operations an update may carry.
_OPS = ("set", "insert", "delete")


@dataclass(frozen=True)
class ArcUpdate:
    """One arc-level change: ``(op, u, v, p)``.

    ``p`` is required for ``"set"``/``"insert"`` and must lie in
    ``(0, 1]`` (the paper's probability domain); it is ignored (and
    normalized to ``None``) for ``"delete"``.
    """

    op: str
    u: int
    v: int
    p: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown update op {self.op!r}; expected one of {_OPS}"
            )
        object.__setattr__(self, "u", int(self.u))
        object.__setattr__(self, "v", int(self.v))
        if self.op == "delete":
            object.__setattr__(self, "p", None)
            return
        if self.p is None:
            raise ValueError(f"op {self.op!r} requires a probability")
        p = float(self.p)
        if math.isnan(p) or not 0.0 < p <= 1.0:
            raise InvalidProbabilityError(p, (self.u, self.v))
        object.__setattr__(self, "p", p)

    @classmethod
    def from_object(cls, obj: object) -> "ArcUpdate":
        """Coerce a dict, tuple, or ArcUpdate into an :class:`ArcUpdate`."""
        if isinstance(obj, ArcUpdate):
            return obj
        if isinstance(obj, dict):
            return cls(
                op=obj.get("op", "set"),
                u=obj["u"],
                v=obj["v"],
                p=obj.get("p"),
            )
        if isinstance(obj, (tuple, list)):
            if len(obj) == 3 and isinstance(obj[0], str):
                return cls(op=obj[0], u=obj[1], v=obj[2])
            if len(obj) == 3:
                return cls(op="set", u=obj[0], v=obj[1], p=obj[2])
            return cls(op=obj[0], u=obj[1], v=obj[2], p=obj[3])
        raise TypeError(f"cannot interpret {obj!r} as an arc update")

    def as_tuple(self) -> Tuple[str, int, int, Optional[float]]:
        """Picklable wire form (what worker update slices carry)."""
        return (self.op, self.u, self.v, self.p)

    def as_dict(self) -> Dict[str, object]:
        """JSON wire form (what ``POST /update`` speaks)."""
        body: Dict[str, object] = {"op": self.op, "u": self.u, "v": self.v}
        if self.p is not None:
            body["p"] = self.p
        return body


def normalize_updates(ops: Iterable[object]) -> List[ArcUpdate]:
    """Coerce a heterogeneous iterable into a validated update list."""
    return [ArcUpdate.from_object(op) for op in ops]


def apply_to_graph(graph: UncertainGraph, ops: Sequence[ArcUpdate]) -> int:
    """Apply a batch to a bare graph; returns the number applied.

    This is the *semantic definition* of a batch — exactly what
    :meth:`DynamicRQTreeEngine.apply` does to its graph, minus the
    damage accounting — used by the gateway's master graph and by
    cold-rebuild parity checks.  ``set``/``insert`` write the
    probability exactly (remove-then-add, never noisy-or);
    ``delete`` of a missing arc is a no-op.
    """
    applied = 0
    for update in ops:
        if update.op == "delete":
            if graph.has_arc(update.u, update.v):
                graph.remove_arc(update.u, update.v)
                applied += 1
            continue
        if graph.has_arc(update.u, update.v):
            graph.remove_arc(update.u, update.v)
        graph.add_arc(update.u, update.v, update.p)
        applied += 1
    return applied


def shard_slices(
    ops: Sequence[ArcUpdate], plan
) -> Tuple[Dict[int, List[Tuple[str, int, int, Optional[float]]]],
           List[ArcUpdate]]:
    """Split a batch into per-shard slices of *local-id* update tuples.

    An update lands on shard ``s`` when both endpoints are owned by
    ``s`` (shard subgraphs only ever contain intra-shard arcs — the
    same rule :func:`~repro.shard.runtime.build_shard_payload` uses).
    Updates whose endpoints straddle shards are *frontier* updates:
    returned separately, they touch only the gateway's master graph,
    whose cross-shard refinement pass is the one place frontier arcs
    are ever read.
    """
    local_of: Dict[int, int] = {}
    for members in plan.shard_nodes:
        for index, node in enumerate(members):
            local_of[node] = index
    slices: Dict[int, List[Tuple[str, int, int, Optional[float]]]] = {
        shard_id: [] for shard_id in range(plan.num_shards)
    }
    frontier: List[ArcUpdate] = []
    for update in ops:
        shard_u = plan.shard_of[update.u]
        shard_v = plan.shard_of[update.v]
        if shard_u != shard_v:
            frontier.append(update)
            continue
        slices[shard_u].append(
            (update.op, local_of[update.u], local_of[update.v], update.p)
        )
    return slices, frontier


class UpdateLog:
    """Epoch-numbered history of admitted update batches.

    ``append`` assigns the next epoch (starting at 1; epoch 0 is the
    graph as loaded) and records the batch.  The log is the replay
    source for cold-rebuild parity checks and for late joiners (a shard
    brought up at epoch ``E`` replays ``since(E0)``), and it is
    bounded: ``max_batches`` caps retained history, dropping the oldest
    batches first (consumers needing full replay snapshot the graph
    instead).
    """

    def __init__(self, max_batches: int = 4096) -> None:
        if max_batches < 1:
            raise ValueError(
                f"max_batches must be positive, got {max_batches}"
            )
        self._lock = threading.Lock()
        self._batches: List[Tuple[int, Tuple[ArcUpdate, ...]]] = []
        self._latest = 0
        self._max_batches = max_batches

    @property
    def latest_epoch(self) -> int:
        """Epoch of the most recently admitted batch (0 = none yet)."""
        with self._lock:
            return self._latest

    def __len__(self) -> int:
        with self._lock:
            return len(self._batches)

    def append(self, ops: Iterable[object]) -> Tuple[int, List[ArcUpdate]]:
        """Admit one batch; returns ``(epoch, validated_updates)``.

        Validation happens *before* the epoch is assigned, so a batch
        with one malformed update is rejected atomically — no epoch is
        burned and no partial state escapes.
        """
        updates = normalize_updates(ops)
        with self._lock:
            self._latest += 1
            epoch = self._latest
            self._batches.append((epoch, tuple(updates)))
            while len(self._batches) > self._max_batches:
                self._batches.pop(0)
        return epoch, updates

    def since(self, epoch: int) -> List[Tuple[int, Tuple[ArcUpdate, ...]]]:
        """Batches with epoch strictly greater than *epoch*, in order."""
        with self._lock:
            return [
                (batch_epoch, batch)
                for batch_epoch, batch in self._batches
                if batch_epoch > epoch
            ]

    def history(self) -> List[Tuple[int, Tuple[ArcUpdate, ...]]]:
        """The retained batch history (oldest first)."""
        with self._lock:
            return list(self._batches)
