"""Shareable, deterministic coin blocks for cross-query world batching.

The batched MC kernel (:mod:`repro.accel.mc_kernel`) spends most of its
time materializing arc coins: one ``Generator.random`` draw of shape
``(num_arcs, worlds)`` per chunk, compared against the arc
probabilities and bit-packed.  Those coins depend only on ``(graph
version, seed, chunk partition)`` — *not* on the query's sources,
candidate set, or hop budget — so concurrent queries that sample the
same number of worlds from the same seed over the same graph version
would each draw an identical coin matrix.

:class:`CoinBlock` shares that draw.  It owns one
``numpy.random.default_rng(seed)`` stream and materializes packed coin
chunks lazily, in the exact order and shapes the kernel would have
drawn them itself; every consumer passing the block as
``coin_source=`` to :func:`repro.accel.mc_kernel.sample_reach_batch`
gets bit-identical coins to a private draw from the same seed.  The
first consumer to need a chunk pays for it; the rest reuse the cached
array.  Per-query answers are therefore *byte-identical* to serial,
unshared execution — the whole point of the serving layer's
concurrent-vs-serial parity guarantee.

Alignment contract: all consumers of one block must request the same
chunk partition, which holds automatically when they call
``sample_reach_batch`` with the same ``num_worlds`` on the same graph
version (the partition is a pure function of both).  Misaligned
requests raise instead of silently desynchronizing the stream; the
estimator's ``backend="auto"`` fallback then degrades that query to
the Python reference path rather than corrupting anyone's answer.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

from .csr import CSRGraph

__all__ = ["CoinBlock", "packed_columns", "pack_world_bits"]


def packed_columns(num_worlds: int) -> int:
    """Packed ``uint8`` columns holding *num_worlds* world bits.

    ``ceil(num_worlds / 8)`` rounded up to a multiple of 8 bytes, so a
    packed row is always view-castable to ``uint64`` lanes (the MC
    kernel's wide word size).  The pad bytes are zero — phantom worlds
    in which no coin ever lands heads — and are sliced off when the
    kernel unpacks its result, so the padding is invisible at the
    unpacked-bits level whatever lane width operates on the rows.
    """
    return ((num_worlds + 63) // 64) * 8


def pack_world_bits(raw: "np.ndarray") -> "np.ndarray":
    """Bit-pack boolean world rows into zero-padded ``uint8`` rows.

    Exactly ``np.packbits(raw, axis=1)`` followed by zero-padding each
    row to :func:`packed_columns` width.  Both the kernel's private
    coin draw and :class:`CoinBlock` pack through here, so shared and
    unshared streams produce identical arrays byte for byte.
    """
    packed = np.packbits(raw, axis=1)
    width = packed_columns(raw.shape[1])
    if packed.shape[1] == width:
        return packed
    padded = np.zeros((packed.shape[0], width), dtype=np.uint8)
    padded[:, : packed.shape[1]] = packed
    return padded


class CoinBlock:
    """Lazily materialized packed arc coins for one sampling stream.

    Parameters
    ----------
    seed:
        The per-query verification seed all sharing queries use; the
        block's stream is ``numpy.random.default_rng(seed)``.
    num_worlds:
        Total worlds of the sampling runs sharing this block (their
        common ``num_samples``); bounds the block's memory.

    Thread-safe: chunk materialization is serialized on an internal
    lock; returned arrays are read-only and shared by reference.
    """

    def __init__(self, seed: Optional[int], num_worlds: int) -> None:
        if np is None:  # pragma: no cover - numpy is a hard dep in practice
            raise RuntimeError("numpy is required for shared coin blocks")
        if num_worlds <= 0:
            raise ValueError(f"num_worlds must be positive, got {num_worlds}")
        self.seed = seed
        self.num_worlds = num_worlds
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)
        self._chunks: Dict[int, "np.ndarray"] = {}
        self._chunk_sizes: Dict[int, int] = {}
        self._next_start = 0
        self._bound_version: Optional[int] = None
        self._bound_arcs: Optional[int] = None
        #: Chunks drawn / chunk requests served from cache (metrics).
        self.draws = 0
        self.hits = 0

    @property
    def nbytes(self) -> int:
        """Bytes held by the materialized chunks."""
        with self._lock:
            return sum(chunk.nbytes for chunk in self._chunks.values())

    def coins(self, csr: CSRGraph, start: int, size: int) -> "np.ndarray":
        """Packed coins for worlds ``start .. start+size-1``.

        Returns the ``uint8[num_arcs, packed_columns(size)]`` array the
        kernel would have produced from its own ``default_rng(seed)``
        at the same stream position — drawn on first request, cached
        after.  Rows are zero-padded to uint64-lane width (see
        :func:`packed_columns`).
        """
        if size <= 0 or start < 0 or start + size > self.num_worlds:
            raise ValueError(
                f"chunk [{start}, {start + size}) outside the block's "
                f"{self.num_worlds} worlds"
            )
        with self._lock:
            if self._bound_version is None:
                self._bound_version = csr.version
                self._bound_arcs = csr.num_arcs
            elif (
                csr.version != self._bound_version
                or csr.num_arcs != self._bound_arcs
            ):
                raise RuntimeError(
                    "coin block bound to graph version "
                    f"{self._bound_version} used with version {csr.version}; "
                    "the graph mutated between sharing queries"
                )
            cached = self._chunks.get(start)
            if cached is not None:
                # Compare exact world counts, not padded widths: rows
                # are padded to uint64-lane multiples, so differently
                # sized chunks can share a byte width yet desync the
                # stream.
                if self._chunk_sizes[start] != size:
                    raise RuntimeError(
                        "misaligned chunk request: consumers of one coin "
                        "block must use the same chunk partition"
                    )
                self.hits += 1
                return cached
            if start != self._next_start:
                raise RuntimeError(
                    f"non-sequential first request for chunk at {start} "
                    f"(next undrawn is {self._next_start}); consumers of "
                    "one coin block must use the same chunk partition"
                )
            # Identical call shape and dtype to the kernel's private
            # draw, so the bits match a per-query rng bit for bit.
            chunk = pack_world_bits(
                self._rng.random(
                    (csr.num_arcs, size), dtype=np.float32
                ) < csr.rev_probs_f32[:, None]
            )
            chunk.setflags(write=False)
            self._chunks[start] = chunk
            self._chunk_sizes[start] = size
            self._next_start = start + size
            self.draws += 1
            return chunk

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoinBlock(seed={self.seed}, worlds={self.num_worlds}, "
            f"chunks={len(self._chunks)}, draws={self.draws}, "
            f"hits={self.hits})"
        )
