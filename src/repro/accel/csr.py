"""Immutable CSR (compressed sparse row) snapshots of an uncertain graph.

The pure-Python :class:`~repro.graph.uncertain.UncertainGraph` stores
adjacency as per-node dicts — ideal for incremental construction and
O(1) arc lookup, hopeless for bulk numeric work.  :func:`csr_snapshot`
freezes the graph into four flat numpy arrays per direction
(``indptr`` / ``indices`` / ``probs``, forward and reverse), the layout
every vectorized kernel in :mod:`repro.accel.mc_kernel` consumes.

Snapshots are cached *on the graph object* and keyed by the graph's
mutation counter (:attr:`UncertainGraph.version`): repeated sampling
runs against an unchanged graph reuse the same arrays, and any
``add_arc`` / ``remove_arc`` / ``add_node`` invalidates the cache
automatically.  The arrays themselves are marked read-only so a stale
reference can never be mutated into inconsistency.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

from ..graph.uncertain import UncertainGraph
from ..resilience.faultinject import fault_point

__all__ = ["CSRGraph", "csr_snapshot", "numpy_available"]


def numpy_available() -> bool:
    """Whether the numpy-backed kernels can run in this environment."""
    return np is not None


class CSRGraph:
    """Read-only CSR view of an :class:`UncertainGraph` at one version.

    Attributes
    ----------
    indptr, indices, probs:
        Forward adjacency: the out-arcs of node ``u`` are
        ``indices[indptr[u]:indptr[u+1]]`` with existence probabilities
        ``probs[indptr[u]:indptr[u+1]]``.
    rev_indptr, rev_indices, rev_probs:
        The same layout for the reverse graph (in-arcs), used by
        reverse-reachability kernels.
    version:
        The :attr:`UncertainGraph.version` the snapshot was taken at.
    """

    __slots__ = (
        "num_nodes",
        "num_arcs",
        "indptr",
        "indices",
        "probs",
        "probs_f32",
        "rev_indptr",
        "rev_indices",
        "rev_probs",
        "rev_probs_f32",
        "version",
    )

    def __init__(self, graph: UncertainGraph) -> None:
        if np is None:
            raise RuntimeError("numpy is required to build a CSR snapshot")
        if not isinstance(graph, UncertainGraph):
            raise TypeError(
                "CSR snapshots require a materialized UncertainGraph; "
                "call .materialize() on subgraph views first "
                f"(got {type(graph).__name__})"
            )
        self.num_nodes = graph.num_nodes
        self.num_arcs = graph.num_arcs
        self.version = graph.version
        self.indptr, self.indices, self.probs = self._pack(
            graph, graph.successors
        )
        self.rev_indptr, self.rev_indices, self.rev_probs = self._pack(
            graph, graph.predecessors
        )
        # float32 copies for the MC kernel's bulk coin flips: float32
        # uniforms are ~2x cheaper to draw and the 2^-24 rounding of a
        # probability is far below any Monte-Carlo resolution.
        self.probs_f32 = self.probs.astype(np.float32)
        self.probs_f32.setflags(write=False)
        self.rev_probs_f32 = self.rev_probs.astype(np.float32)
        self.rev_probs_f32.setflags(write=False)

    @staticmethod
    def _pack(graph: UncertainGraph, neighbours):
        n = graph.num_nodes
        indptr = np.zeros(n + 1, dtype=np.int64)
        for u in range(n):
            indptr[u + 1] = indptr[u] + len(neighbours(u))
        m = int(indptr[-1])
        indices = np.empty(m, dtype=np.int64)
        probs = np.empty(m, dtype=np.float64)
        pos = 0
        for u in range(n):
            for v, p in neighbours(u).items():
                indices[pos] = v
                probs[pos] = p
                pos += 1
        for array in (indptr, indices, probs):
            array.setflags(write=False)
        return indptr, indices, probs

    def out_degrees(self) -> "np.ndarray":
        """Vector of out-degrees (length ``num_nodes``)."""
        return self.indptr[1:] - self.indptr[:-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_nodes}, m={self.num_arcs}, "
            f"version={self.version})"
        )


def csr_snapshot(graph: UncertainGraph) -> CSRGraph:
    """The CSR snapshot of *graph*, building (and caching) it if needed.

    The snapshot is stored on the graph and reused while
    ``graph.version`` is unchanged; any mutation makes the next call
    rebuild.  Cost of a rebuild is one pass over the adjacency dicts —
    amortized to nothing across the K worlds of a sampling run.
    """
    fault_point("csr.snapshot")
    cached: Optional[CSRGraph] = getattr(graph, "_csr_cache", None)
    if cached is not None and cached.version == graph.version:
        return cached
    snapshot = CSRGraph(graph)
    graph._csr_cache = snapshot
    return snapshot
