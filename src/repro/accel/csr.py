"""Immutable CSR (compressed sparse row) snapshots of an uncertain graph.

The pure-Python :class:`~repro.graph.uncertain.UncertainGraph` stores
adjacency as per-node dicts — ideal for incremental construction and
O(1) arc lookup, hopeless for bulk numeric work.  :func:`csr_snapshot`
freezes the graph into four flat numpy arrays per direction
(``indptr`` / ``indices`` / ``probs``, forward and reverse), the layout
every vectorized kernel in :mod:`repro.accel.mc_kernel` consumes.

Snapshots are cached *on the graph object* and keyed by the graph's
``(version, epoch)`` pair (:attr:`UncertainGraph.version` counts
mutations, :attr:`UncertainGraph.epoch` counts published live-update
generations): repeated sampling runs against an unchanged graph reuse
the same arrays, and any ``add_arc`` / ``remove_arc`` / ``add_node`` or
epoch advance invalidates the cache automatically.  The arrays themselves are marked read-only so a stale
reference can never be mutated into inconsistency.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

from ..graph.uncertain import UncertainGraph
from ..resilience.faultinject import fault_point

__all__ = ["CSRGraph", "csr_snapshot", "numpy_available"]


def numpy_available() -> bool:
    """Whether the numpy-backed kernels can run in this environment."""
    return np is not None


class CSRGraph:
    """Read-only CSR view of an :class:`UncertainGraph` at one version.

    Attributes
    ----------
    indptr, indices, probs:
        Forward adjacency: the out-arcs of node ``u`` are
        ``indices[indptr[u]:indptr[u+1]]`` with existence probabilities
        ``probs[indptr[u]:indptr[u+1]]``.
    rev_indptr, rev_indices, rev_probs:
        The same layout for the reverse graph (in-arcs), used by
        reverse-reachability kernels.
    version:
        The :attr:`UncertainGraph.version` the snapshot was taken at.
    epoch:
        The :attr:`UncertainGraph.epoch` the snapshot was taken at.
        Copy-on-write epoch snapshots can share a version with their
        parent graph (``copy(preserve_versioning=True)`` then a batch of
        identical-count mutations), so cache validity is decided on the
        ``(version, epoch)`` pair, never the version alone.
    """

    __slots__ = (
        "num_nodes",
        "num_arcs",
        "indptr",
        "indices",
        "probs",
        "probs_f32",
        "rev_indptr",
        "rev_indices",
        "rev_probs",
        "rev_probs_f32",
        "version",
        "epoch",
    )

    def __init__(self, graph: UncertainGraph) -> None:
        if np is None:
            raise RuntimeError("numpy is required to build a CSR snapshot")
        if not isinstance(graph, UncertainGraph):
            raise TypeError(
                "CSR snapshots require a materialized UncertainGraph; "
                "call .materialize() on subgraph views first "
                f"(got {type(graph).__name__})"
            )
        self.num_nodes = graph.num_nodes
        self.num_arcs = graph.num_arcs
        self.version = graph.version
        self.epoch = graph.epoch
        self.indptr, self.indices, self.probs = self._pack(
            graph, graph.successors
        )
        self.rev_indptr, self.rev_indices, self.rev_probs = self._pack(
            graph, graph.predecessors
        )
        # float32 copies for the MC kernel's bulk coin flips: float32
        # uniforms are ~2x cheaper to draw and the 2^-24 rounding of a
        # probability is far below any Monte-Carlo resolution.
        self.probs_f32 = self.probs.astype(np.float32)
        self.probs_f32.setflags(write=False)
        self.rev_probs_f32 = self.rev_probs.astype(np.float32)
        self.rev_probs_f32.setflags(write=False)

    @classmethod
    def from_arrays(
        cls,
        arrays: dict,
        num_nodes: int,
        num_arcs: int,
        version: int,
        epoch: int = 0,
    ) -> "CSRGraph":
        """Wrap pre-built CSR arrays (e.g. shared-memory views) without
        touching a graph object.

        *arrays* maps each array attribute (``indptr`` … ``rev_probs_f32``)
        to a numpy array; missing ``*_f32`` fields are derived.  The
        arrays are adopted by reference — zero-copy — and marked
        read-only, so a shared-memory consumer can never scribble on a
        segment other processes map.  *version* is the caller's claim
        about which graph version the arrays snapshot; the shard runtime
        sets it to the rebuilt graph's version so the snapshot slots
        straight into the graph's CSR cache.
        """
        if np is None:
            raise RuntimeError("numpy is required to build a CSR snapshot")
        self = object.__new__(cls)
        self.num_nodes = num_nodes
        self.num_arcs = num_arcs
        self.version = version
        self.epoch = epoch
        for field in (
            "indptr", "indices", "probs",
            "rev_indptr", "rev_indices", "rev_probs",
        ):
            array = arrays[field]
            array.setflags(write=False)
            setattr(self, field, array)
        for field in ("probs_f32", "rev_probs_f32"):
            array = arrays.get(field)
            if array is None:
                array = arrays[field[: -len("_f32")]].astype(np.float32)
            array.setflags(write=False)
            setattr(self, field, array)
        return self

    @staticmethod
    def _pack(graph: UncertainGraph, neighbours):
        n = graph.num_nodes
        indptr = np.zeros(n + 1, dtype=np.int64)
        for u in range(n):
            indptr[u + 1] = indptr[u] + len(neighbours(u))
        m = int(indptr[-1])
        indices = np.empty(m, dtype=np.int64)
        probs = np.empty(m, dtype=np.float64)
        pos = 0
        for u in range(n):
            for v, p in neighbours(u).items():
                indices[pos] = v
                probs[pos] = p
                pos += 1
        for array in (indptr, indices, probs):
            array.setflags(write=False)
        return indptr, indices, probs

    def out_degrees(self) -> "np.ndarray":
        """Vector of out-degrees (length ``num_nodes``)."""
        return self.indptr[1:] - self.indptr[:-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_nodes}, m={self.num_arcs}, "
            f"version={self.version})"
        )


#: How often a snapshot build is retried when a concurrent mutation is
#: detected mid-pack before giving up with a clear error.
_BUILD_RETRIES = 8


def csr_snapshot(graph: UncertainGraph) -> CSRGraph:
    """The CSR snapshot of *graph*, building (and caching) it if needed.

    The snapshot is stored on the graph and reused while
    ``graph.version`` is unchanged; any mutation makes the next call
    rebuild.  Cost of a rebuild is one pass over the adjacency dicts —
    amortized to nothing across the K worlds of a sampling run.

    Thread safety: build and cache replacement are serialized on a
    per-graph lock, so concurrent snapshotters (the serving layer's
    worker pool) share one build per graph version and a torn snapshot
    — one whose pack raced a mutation on another thread — is never
    cached *or* returned.  A mutation observed mid-build triggers a
    bounded retry; a graph mutating faster than it can be packed is a
    caller-side race and surfaces as a ``RuntimeError`` rather than
    silently inconsistent arrays.
    """
    from ..service.metrics import get_registry

    fault_point("csr.snapshot")
    with graph._csr_lock:
        cached: Optional[CSRGraph] = graph._csr_cache
        if (
            cached is not None
            and cached.version == graph.version
            and cached.epoch == graph.epoch
        ):
            get_registry().counter("accel.csr_cache_hits").inc()
            return cached
        for _ in range(_BUILD_RETRIES):
            version = graph.version
            epoch = graph.epoch
            try:
                snapshot = CSRGraph(graph)
            except Exception:
                if graph.version == version:
                    raise  # a genuine build error, not a racing mutation
                continue
            if graph.version == version and graph.epoch == epoch:
                graph._csr_cache = snapshot
                get_registry().counter("accel.csr_builds").inc()
                return snapshot
        raise RuntimeError(
            "graph mutated continuously during CSR snapshot build; "
            "serialize mutations against sampling"
        )
