"""Batch-of-worlds Monte-Carlo reachability kernel (numpy backend).

The pure-Python sampler (:func:`repro.graph.sampling.sample_reachable`)
walks one world at a time, flipping one coin per arc with Python-level
dict lookups.  This module advances ``W`` worlds *simultaneously* by
packing them into the bits of ``uint8`` lanes:

* arc coins for a whole chunk are materialized in one
  ``Generator.random`` draw and bit-packed into ``coins[m, W/8]``;
* reachability state is ``visited[n, W/8]`` / ``frontier[n, W/8]``
  bitmaps — one byte carries eight worlds;
* one BFS step is three vectorized passes: gather
  ``frontier[src_of_each_in_arc] & coins``, OR-reduce the arc rows per
  target node with ``np.bitwise_or.reduceat`` (the arcs are already
  grouped by target in the reverse CSR), and mask out
  already-visited / disallowed targets.

Materializing every coin up front is *exactly* possible-world
semantics — lazy per-arc flipping is justified in the paper precisely
because it is distributionally equivalent to materializing the world
first, and this kernel simply takes the other side of that equivalence.
Coins the BFS never observes don't bias anything: they are independent
of the reached set.  (The numpy backend consumes its random stream in a
different order than the Python one, so per-seed results differ
*between* backends while remaining deterministic *within* each.)

Worlds are processed in chunks sized to bound peak memory (the one-shot
coin draw dominates), so ``K`` can be arbitrarily large; per-node hit
counts and per-world reached-set sizes are accumulated across chunks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Union

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

from ..graph.uncertain import UncertainGraph
from ..resilience.faultinject import fault_point
from .csr import CSRGraph, csr_snapshot

__all__ = ["BatchReachResult", "sample_reach_batch"]

#: Upper bound on (worlds per chunk) x num_arcs: the chunk's float32
#: uniform draw is ``4 * m * W`` bytes, so 16M slots caps the transient
#: at 64 MB (the packed state arrays are 32x smaller than that).
_TARGET_SLOTS = 16_000_000
#: Hard bounds on the world-chunk size.
_MIN_CHUNK, _MAX_CHUNK = 8, 4096


class BatchReachResult:
    """Accumulated output of a batched sampling run.

    Attributes
    ----------
    counts:
        ``int64[n]`` — in how many of the ``num_worlds`` worlds each
        node was reached from the source set.
    world_sizes:
        ``int64[num_worlds]`` — size of the reached set per world (the
        quantity influence-spread estimation averages).
    num_worlds:
        Total number of worlds simulated.
    """

    __slots__ = ("counts", "world_sizes", "num_worlds")

    def __init__(
        self, counts: "np.ndarray", world_sizes: "np.ndarray"
    ) -> None:
        self.counts = counts
        self.world_sizes = world_sizes
        self.num_worlds = int(world_sizes.shape[0])


def _chunk_size(csr: CSRGraph, num_worlds: int) -> int:
    footprint = max(csr.num_nodes, csr.num_arcs, 1)
    chunk = _TARGET_SLOTS // footprint
    return max(_MIN_CHUNK, min(_MAX_CHUNK, chunk, num_worlds))


def _simulate_chunk(
    csr: CSRGraph,
    source_idx: "np.ndarray",
    num_worlds: int,
    rng: "np.random.Generator",
    allowed_mask: Optional["np.ndarray"],
    max_hops: Optional[int],
) -> "np.ndarray":
    """Advance *num_worlds* worlds to fixpoint; returns visited[W, n].

    Worlds live in the bit lanes of ``uint8`` rows: byte column ``b`` of
    node row ``v`` holds worlds ``8b .. 8b+7``, so every bitwise op below
    advances eight worlds at once.  Trailing pad bits in the last byte
    are phantom worlds whose coins pack to 0 (``np.packbits`` zero-pads),
    so nothing propagates in them and they are sliced off at the end.
    """
    n = csr.num_nodes
    num_bytes = (num_worlds + 7) // 8
    visited = np.zeros((n, num_bytes), dtype=np.uint8)
    if source_idx.size:
        visited[source_idx] = 0xFF
    if source_idx.size and csr.num_arcs and (
        max_hops is None or max_hops > 0
    ):
        # One Bernoulli coin per (arc, world), drawn in reverse-CSR arc
        # order (grouped by target) so the reduceat below needs no
        # permutation.  float32 uniforms: ~2x cheaper than float64, and
        # the 2^-24 probability rounding is far below MC resolution.
        coins = np.packbits(
            rng.random(
                (csr.num_arcs, num_worlds), dtype=np.float32
            ) < csr.rev_probs_f32[:, None],
            axis=1,
        )
        in_degrees = csr.rev_indptr[1:] - csr.rev_indptr[:-1]
        has_in = in_degrees > 0
        # reduceat segment starts for nodes with at least one in-arc;
        # empty segments are excluded because reduceat would return the
        # row *at* the boundary instead of an empty OR.
        segment_starts = np.asarray(csr.rev_indptr[:-1][has_in])
        predecessors = csr.rev_indices
        frontier = visited.copy()
        new = np.empty_like(visited)
        depth = 0
        while True:
            if max_hops is not None and depth >= max_hops:
                break
            candidate = frontier[predecessors]
            candidate &= coins
            new[:] = 0
            new[has_in] = np.bitwise_or.reduceat(
                candidate, segment_starts, axis=0
            )
            new &= ~visited
            if allowed_mask is not None:
                new[~allowed_mask] = 0
            if not new.any():
                break
            visited |= new
            frontier = new
            depth += 1
    # Unpack (n, num_bytes) -> (n, W) bits, drop phantom pad worlds,
    # and hand back the (W, n) orientation the accumulator expects.
    bits = np.unpackbits(visited, axis=1)[:, :num_worlds]
    return bits.T.astype(bool)


def sample_reach_batch(
    graph: Union[UncertainGraph, CSRGraph],
    sources: Sequence[int],
    num_worlds: int,
    rng: "np.random.Generator",
    allowed: Optional[Union[Set[int], Iterable[int]]] = None,
    max_hops: Optional[int] = None,
) -> BatchReachResult:
    """Sample *num_worlds* possible worlds in vectorized batches.

    Drop-in (distribution-level) equivalent of running
    :func:`repro.graph.sampling.sample_reachable` *num_worlds* times and
    tallying, supporting the same ``allowed`` node restriction (the
    candidate-induced subgraph of RQ-tree-MC verification) and
    ``max_hops`` budget (distance-constrained reachability).

    Parameters
    ----------
    graph:
        An :class:`UncertainGraph` (its cached CSR snapshot is used) or
        a pre-built :class:`CSRGraph`.
    rng:
        A ``numpy.random.Generator``; the caller owns the state, so
        successive calls continue one deterministic stream.
    """
    if np is None:
        raise RuntimeError("numpy is required for the batched MC kernel")
    if num_worlds <= 0:
        raise ValueError(f"num_worlds must be positive, got {num_worlds}")
    csr = graph if isinstance(graph, CSRGraph) else csr_snapshot(graph)
    n = csr.num_nodes

    allowed_mask: Optional[np.ndarray] = None
    if allowed is not None:
        allowed_mask = np.zeros(n, dtype=bool)
        allowed_ids = np.fromiter(
            (node for node in allowed), dtype=np.int64
        )
        if allowed_ids.size:
            allowed_mask[allowed_ids] = True

    source_set = dict.fromkeys(int(s) for s in sources)
    source_idx = np.fromiter(source_set, dtype=np.int64, count=len(source_set))
    if allowed_mask is not None and source_idx.size:
        source_idx = source_idx[allowed_mask[source_idx]]

    counts = np.zeros(n, dtype=np.int64)
    world_sizes = np.empty(num_worlds, dtype=np.int64)
    chunk = _chunk_size(csr, num_worlds)
    done = 0
    while done < num_worlds:
        fault_point("mc.kernel.chunk")
        size = min(chunk, num_worlds - done)
        visited = _simulate_chunk(
            csr, source_idx, size, rng, allowed_mask, max_hops
        )
        counts += visited.sum(axis=0, dtype=np.int64)
        world_sizes[done:done + size] = visited.sum(axis=1, dtype=np.int64)
        done += size
    return BatchReachResult(counts, world_sizes)
