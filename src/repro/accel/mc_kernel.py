"""Batch-of-worlds Monte-Carlo reachability kernel (numpy backend).

The pure-Python sampler (:func:`repro.graph.sampling.sample_reachable`)
walks one world at a time, flipping one coin per arc with Python-level
dict lookups.  This module advances ``W`` worlds *simultaneously* by
packing them into the bits of wide integer lanes (``uint64`` by
default, ``uint8`` selectable for parity testing):

* arc coins for a whole chunk are materialized in one
  ``Generator.random`` draw and bit-packed into ``coins[m, W/8]``
  bytes, zero-padded to a multiple of 8 so every row view-casts to
  ``uint64`` words;
* reachability state is ``visited[n, W/8]`` / ``frontier[n, W/8]``
  bitmaps — one 64-bit word carries sixty-four worlds, so each
  bitwise op touches 8x fewer array elements than the byte lanes the
  kernel started with (the arrays are the same bytes either way; lane
  width is purely how numpy strides over them);
* one BFS step is three vectorized passes: gather
  ``frontier[src_of_each_in_arc] & coins``, OR-reduce the arc rows per
  target node with ``np.bitwise_or.reduceat`` (the arcs are already
  grouped by target in the reverse CSR), and mask out
  already-visited / disallowed targets.

Lane-width contract: AND/OR/NOT are bitwise, so reinterpreting the
packed bytes as ``uint64`` words changes *nothing* about which bits
end up set — results are byte-identical at the unpacked-bits level
across lane widths (``tests/test_backend_parity.py`` pins this for
every seeded configuration).  The default is ``uint64``; set the
``REPRO_MC_LANES`` environment variable or pass ``lanes=`` to
override.

Materializing every coin up front is *exactly* possible-world
semantics — lazy per-arc flipping is justified in the paper precisely
because it is distributionally equivalent to materializing the world
first, and this kernel simply takes the other side of that equivalence.
Coins the BFS never observes don't bias anything: they are independent
of the reached set.  (The numpy backend consumes its random stream in a
different order than the Python one, so per-seed results differ
*between* backends while remaining deterministic *within* each.)

Worlds are processed in chunks sized to bound peak memory (the one-shot
coin draw dominates), so ``K`` can be arbitrarily large; per-node hit
counts and per-world reached-set sizes are accumulated across chunks.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Set, Union

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

from ..graph.uncertain import UncertainGraph
from ..resilience.faultinject import fault_point
from .coins import pack_world_bits, packed_columns
from .csr import CSRGraph, csr_snapshot

__all__ = ["BatchReachResult", "sample_reach_batch", "resolve_lanes"]

#: Valid lane widths: how many world bits one numpy element carries.
_LANES = ("uint8", "uint64")


def resolve_lanes(lanes: Optional[str]) -> str:
    """Resolve a ``lanes=`` argument to a concrete lane width.

    ``None`` reads the ``REPRO_MC_LANES`` environment variable and
    falls back to ``uint64``.  Lane width never changes results (see
    the module docstring); ``uint8`` exists for parity tests and as an
    escape hatch.
    """
    if lanes is None:
        lanes = os.environ.get("REPRO_MC_LANES", "uint64")
    if lanes not in _LANES:
        raise ValueError(
            f"unknown lane width {lanes!r}; expected one of {_LANES}"
        )
    return lanes

#: Upper bound on (worlds per chunk) x num_arcs: the chunk's float32
#: uniform draw is ``4 * m * W`` bytes, so 16M slots caps the transient
#: at 64 MB (the packed state arrays are 32x smaller than that).
_TARGET_SLOTS = 16_000_000
#: Hard bounds on the world-chunk size.
_MIN_CHUNK, _MAX_CHUNK = 8, 4096


class BatchReachResult:
    """Accumulated output of a batched sampling run.

    Attributes
    ----------
    counts:
        ``int64[n]`` — in how many of the ``num_worlds`` worlds each
        node was reached from the source set.
    world_sizes:
        ``int64[num_worlds]`` — size of the reached set per world (the
        quantity influence-spread estimation averages).
    num_worlds:
        Total number of worlds simulated.
    """

    __slots__ = ("counts", "world_sizes", "num_worlds")

    def __init__(
        self, counts: "np.ndarray", world_sizes: "np.ndarray"
    ) -> None:
        self.counts = counts
        self.world_sizes = world_sizes
        self.num_worlds = int(world_sizes.shape[0])


def _chunk_size(csr: CSRGraph, num_worlds: int) -> int:
    footprint = max(csr.num_nodes, csr.num_arcs, 1)
    chunk = _TARGET_SLOTS // footprint
    return max(_MIN_CHUNK, min(_MAX_CHUNK, chunk, num_worlds))


class _ArcPlan:
    """Per-call propagation plan: which rev-CSR arcs can ever fire.

    With an ``allowed`` restriction (RQ-tree-MC verifies inside the
    candidate-induced subgraph, typically a few dozen nodes of a
    many-thousand-node graph) only arcs with *both* endpoints allowed
    can propagate anything: the frontier never holds a disallowed
    source bit, and disallowed targets are masked out anyway.  Slicing
    the BFS down to those arcs is therefore bit-identical to running
    it on the full arc set while making the per-iteration gather /
    reduceat cost proportional to the candidate subgraph, not the
    graph.  Coins are still drawn for every arc (the draw shape is the
    determinism contract, and shared coin blocks depend on it); only
    the propagation reads a row subset.
    """

    __slots__ = (
        "arc_rows", "predecessors", "targets", "segment_starts", "has_in"
    )

    def __init__(
        self, csr: CSRGraph, allowed_mask: Optional["np.ndarray"]
    ) -> None:
        in_degrees = csr.rev_indptr[1:] - csr.rev_indptr[:-1]
        targets = np.repeat(np.arange(csr.num_nodes), in_degrees)
        keep = None
        if allowed_mask is not None:
            keep = allowed_mask[targets]
            keep &= allowed_mask[csr.rev_indices]
        if allowed_mask is None or bool(keep.all()):
            # No restriction, or one that keeps every arc (the loose-
            # filter regime: the candidate pool covers the graph).  An
            # identity subset would fancy-index-copy the whole coin
            # matrix every chunk for nothing, so use the rows as-is;
            # disallowed isolated nodes are handled by the caller's
            # post-step mask, which is the documented equivalence.
            self.arc_rows: Optional["np.ndarray"] = None
            has_in = in_degrees > 0
            self.predecessors = csr.rev_indices
            self.targets = targets
            # reduceat segment starts for nodes with at least one
            # in-arc; empty segments are excluded because reduceat
            # would return the row *at* the boundary, not an empty OR.
            self.segment_starts = np.asarray(csr.rev_indptr[:-1][has_in])
            self.has_in = has_in
            return
        arc_rows = np.nonzero(keep)[0]
        self.arc_rows = arc_rows
        self.predecessors = csr.rev_indices[arc_rows]
        self.targets = targets[arc_rows]
        # arc_rows is ascending, so the surviving arcs stay grouped by
        # target in target order; rebuild the segment boundaries.
        sub_in_degrees = np.bincount(
            self.targets, minlength=csr.num_nodes
        )
        has_in = sub_in_degrees > 0
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(sub_in_degrees))
        )
        self.segment_starts = indptr[:-1][has_in]
        self.has_in = has_in


def _simulate_chunk(
    csr: CSRGraph,
    source_idx: "np.ndarray",
    num_worlds: int,
    rng: "np.random.Generator",
    allowed_mask: Optional["np.ndarray"],
    max_hops: Optional[int],
    plan: Optional[_ArcPlan] = None,
    coin_source=None,
    world_start: int = 0,
    lanes: str = "uint64",
) -> "np.ndarray":
    """Advance *num_worlds* worlds to fixpoint; returns visited[W, n].

    Worlds live in the bit lanes of integer rows: with ``uint64`` lanes
    word column ``b`` of node row ``v`` holds worlds ``64b .. 64b+63``,
    so every bitwise op below advances sixty-four worlds at once (eight
    with ``uint8`` lanes; the backing bytes are identical, only the
    element stride differs).  Trailing pad bits are phantom worlds
    whose coins pack to 0 (:func:`pack_world_bits` zero-pads), so
    nothing propagates in them and they are sliced off at the end.
    """
    n = csr.num_nodes
    num_bytes = packed_columns(num_worlds)
    lane_dtype = np.uint64 if lanes == "uint64" else np.uint8
    visited = np.zeros((n, num_bytes), dtype=np.uint8)
    if source_idx.size:
        visited[source_idx] = 0xFF
    # The lane view shares `visited`'s bytes: writes through it land in
    # the uint8 array the final unpack reads.
    visited_l = visited.view(lane_dtype)
    if source_idx.size and csr.num_arcs and (
        max_hops is None or max_hops > 0
    ):
        # One Bernoulli coin per (arc, world), drawn in reverse-CSR arc
        # order (grouped by target) so the reduceat below needs no
        # permutation.  float32 uniforms: ~2x cheaper than float64, and
        # the 2^-24 probability rounding is far below MC resolution.
        # A coin_source (repro.accel.coins.CoinBlock) supplies the same
        # packed bits from a shared, seed-identical stream instead.
        if coin_source is not None:
            coins = coin_source.coins(csr, world_start, num_worlds)
        else:
            coins = pack_world_bits(
                rng.random(
                    (csr.num_arcs, num_worlds), dtype=np.float32
                ) < csr.rev_probs_f32[:, None]
            )
        if plan is None:
            plan = _ArcPlan(csr, allowed_mask)
        if plan.arc_rows is not None:
            coins = coins[plan.arc_rows]
        coins = coins.view(lane_dtype)
        frontier = visited_l.copy()
        new = np.empty_like(frontier)
        num_plan_arcs = plan.predecessors.size
        depth = 0
        while True:
            if max_hops is not None and depth >= max_hops:
                break
            # Only arcs whose source node has a live frontier bit in
            # *some* world can propagate; when few do (small reached
            # sets — the subcritical / tight-candidate regime), scatter
            # just those rows instead of gathering every arc.  OR
            # accumulation is order-independent, so both paths produce
            # identical bits.
            live = frontier.any(axis=1)
            active = np.nonzero(live[plan.predecessors])[0]
            if active.size == 0:
                break
            # NOTE: ``frontier`` aliases ``new`` after the first
            # iteration, so the candidate gather (a fancy-index copy)
            # must happen before ``new`` is zeroed.
            if active.size * 8 < num_plan_arcs:
                candidate = frontier[plan.predecessors[active]]
                candidate &= coins[active]
                new[:] = 0
                np.bitwise_or.at(new, plan.targets[active], candidate)
            else:
                candidate = frontier[plan.predecessors]
                candidate &= coins
                new[:] = 0
                if plan.segment_starts.size:
                    new[plan.has_in] = np.bitwise_or.reduceat(
                        candidate, plan.segment_starts, axis=0
                    )
            new &= ~visited_l
            if plan.arc_rows is None and allowed_mask is not None:
                new[~allowed_mask] = 0
            if not new.any():
                break
            visited_l |= new
            frontier = new
            depth += 1
    # Unpack (n, num_bytes) -> (n, W) bits, drop phantom pad worlds,
    # and hand back the (W, n) orientation the accumulator expects.
    bits = np.unpackbits(visited, axis=1)[:, :num_worlds]
    return bits.T.astype(bool)


def sample_reach_batch(
    graph: Union[UncertainGraph, CSRGraph],
    sources: Sequence[int],
    num_worlds: int,
    rng: "np.random.Generator",
    allowed: Optional[Union[Set[int], Iterable[int]]] = None,
    max_hops: Optional[int] = None,
    coin_source=None,
    world_offset: int = 0,
    lanes: Optional[str] = None,
) -> BatchReachResult:
    """Sample *num_worlds* possible worlds in vectorized batches.

    Drop-in (distribution-level) equivalent of running
    :func:`repro.graph.sampling.sample_reachable` *num_worlds* times and
    tallying, supporting the same ``allowed`` node restriction (the
    candidate-induced subgraph of RQ-tree-MC verification) and
    ``max_hops`` budget (distance-constrained reachability).

    Parameters
    ----------
    graph:
        An :class:`UncertainGraph` (its cached CSR snapshot is used) or
        a pre-built :class:`CSRGraph`.
    rng:
        A ``numpy.random.Generator``; the caller owns the state, so
        successive calls continue one deterministic stream.
    coin_source:
        Optional :class:`repro.accel.coins.CoinBlock` supplying the
        packed arc coins from a shared stream instead of drawing them
        from *rng*.  The block's bits are identical to a private draw
        from the same seed, so answers are byte-identical with and
        without sharing; *rng* is left untouched when a source is used.
    world_offset:
        Index of this call's first world within the coin source's
        stream (continuation calls pass their accumulated world count).
    lanes:
        Lane width for the packed world bitmaps: ``"uint64"`` (default)
        or ``"uint8"``.  Never changes results — see the module
        docstring; ``None`` resolves via :func:`resolve_lanes`.
    """
    if np is None:
        raise RuntimeError("numpy is required for the batched MC kernel")
    if num_worlds <= 0:
        raise ValueError(f"num_worlds must be positive, got {num_worlds}")
    lanes = resolve_lanes(lanes)
    csr = graph if isinstance(graph, CSRGraph) else csr_snapshot(graph)
    n = csr.num_nodes

    from ..service.metrics import get_registry

    registry = get_registry()
    registry.counter("accel.kernel_calls").inc()
    registry.counter("accel.kernel_worlds").inc(num_worlds)

    allowed_mask: Optional[np.ndarray] = None
    if allowed is not None:
        allowed_mask = np.zeros(n, dtype=bool)
        allowed_ids = np.fromiter(
            (node for node in allowed), dtype=np.int64
        )
        if allowed_ids.size:
            allowed_mask[allowed_ids] = True

    source_set = dict.fromkeys(int(s) for s in sources)
    source_idx = np.fromiter(source_set, dtype=np.int64, count=len(source_set))
    if allowed_mask is not None and source_idx.size:
        source_idx = source_idx[allowed_mask[source_idx]]

    counts = np.zeros(n, dtype=np.int64)
    world_sizes = np.empty(num_worlds, dtype=np.int64)
    plan = _ArcPlan(csr, allowed_mask)
    chunk = _chunk_size(csr, num_worlds)
    done = 0
    while done < num_worlds:
        fault_point("mc.kernel.chunk")
        registry.counter("accel.kernel_chunks").inc()
        size = min(chunk, num_worlds - done)
        visited = _simulate_chunk(
            csr, source_idx, size, rng, allowed_mask, max_hops,
            plan=plan, coin_source=coin_source,
            world_start=world_offset + done, lanes=lanes,
        )
        counts += visited.sum(axis=0, dtype=np.int64)
        world_sizes[done:done + size] = visited.sum(axis=1, dtype=np.int64)
        done += size
    return BatchReachResult(counts, world_sizes)
