"""Vectorized acceleration backends for the sampling hot path.

Every sampling-based estimator in the library (MC-Sampling baseline,
RQ-tree-MC verification, influence spread, reliability detection) is a
tally over K lazily-sampled possible worlds.  This package provides the
shared machinery to run that tally as bulk numpy work instead of a
per-world Python BFS:

* :mod:`repro.accel.csr` — immutable CSR snapshots of
  :class:`~repro.graph.uncertain.UncertainGraph`, cached on the graph
  and invalidated on mutation;
* :mod:`repro.accel.mc_kernel` — the batch-of-worlds frontier-expansion
  kernel (``visited[W, n]`` boolean state, bulk coin flips);
* :func:`resolve_backend` — the ``backend="auto"|"python"|"numpy"``
  dispatch rule threaded through every sampling entry point.

Contract between backends
-------------------------
Both backends draw from the same distribution (lazy possible-world
semantics) and both are deterministic per seed, but they consume their
random streams differently, so the *same seed gives different concrete
samples on different backends*.  The pure-Python path is the reference
oracle; the numpy path must agree with it statistically (and with the
exact enumerator on small graphs) — see ``tests/test_backend_parity.py``.

Failure contract (fallback ladder)
----------------------------------
``backend="auto"`` can never fail harder than the pure-Python seed
code: if the numpy path raises — a real defect or a fault injected at
the ``"csr.snapshot"`` / ``"mc.kernel.chunk"`` points of
:mod:`repro.resilience.faultinject` — the estimator logs a structured
warning on the ``repro.resilience`` logger and re-runs the failed batch
on the Python reference path, whose seeded RNG the numpy attempt never
touched (so the fallback answers are byte-identical to
``backend="python"``).  An *explicit* ``backend="numpy"`` request still
raises: the caller demanded that implementation, and silently answering
with another would hide the defect.
"""

from __future__ import annotations

from typing import Optional

from ..errors import BackendUnavailableError
from .csr import CSRGraph, csr_snapshot, numpy_available
from .mc_kernel import BatchReachResult, sample_reach_batch

__all__ = [
    "CSRGraph",
    "csr_snapshot",
    "numpy_available",
    "BatchReachResult",
    "sample_reach_batch",
    "resolve_backend",
    "BACKENDS",
    "AUTO_NODE_THRESHOLD",
]

#: Valid values for every ``backend=`` parameter in the library.
BACKENDS = ("auto", "python", "numpy")

#: ``backend="auto"`` switches to the numpy kernel at this many
#: effective nodes (the candidate-set size when sampling is restricted,
#: the full graph size otherwise).  Below it, per-call numpy overhead
#: (snapshot lookups, array setup) can exceed the BFS itself, and the
#: seeded pure-Python reference keeps long-standing deterministic
#: behaviour for the small graphs the tests pin down.
AUTO_NODE_THRESHOLD = 512


def resolve_backend(
    backend: str, effective_nodes: Optional[int] = None
) -> str:
    """Resolve a ``backend=`` argument to ``"python"`` or ``"numpy"``.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.  ``"auto"`` picks numpy when it is
        importable and the workload is large enough to benefit
        (``effective_nodes >= AUTO_NODE_THRESHOLD``); explicit
        ``"numpy"`` raises :class:`BackendUnavailableError` if numpy is
        missing rather than silently degrading.
    effective_nodes:
        Size of the node set sampling will actually touch.  ``None``
        means unknown, which ``"auto"`` treats as small (python).
    """
    if backend == "python":
        return "python"
    if backend == "numpy":
        if not numpy_available():
            raise BackendUnavailableError("numpy", "numpy is not importable")
        return "numpy"
    if backend == "auto":
        if (
            numpy_available()
            and effective_nodes is not None
            and effective_nodes >= AUTO_NODE_THRESHOLD
        ):
            return "numpy"
        return "python"
    raise BackendUnavailableError(
        str(backend), f"expected one of {', '.join(BACKENDS)}"
    )
