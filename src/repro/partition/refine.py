"""Fiduccia–Mattheyses boundary refinement (multilevel phase 3).

After projecting a coarse bipartition back to a finer level, FM passes
move individual nodes between the two sides to reduce the cut weight
while keeping both sides within the balance constraint.  Each pass:

1. computes the *gain* (cut-weight reduction) of moving every node,
2. repeatedly moves the best-gain movable node (each node moves at most
   once per pass — the lock rule that lets FM escape local minima by
   accepting temporarily negative gains),
3. rolls back to the best prefix of moves seen during the pass.

Passes repeat until one fails to improve the cut.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from .wgraph import WeightedUndirectedGraph

__all__ = ["fm_refine", "fm_pass"]


def _gains(graph: WeightedUndirectedGraph, side: List[bool]) -> List[float]:
    """Gain of flipping each node: external minus internal edge weight."""
    gains = [0.0] * graph.num_nodes
    for u in range(graph.num_nodes):
        internal = 0.0
        external = 0.0
        for v, w in graph.adjacency[u].items():
            if side[v] == side[u]:
                internal += w
            else:
                external += w
        gains[u] = external - internal
    return gains


def _move_feasible(
    node_weight: int,
    on_true_side: bool,
    weight_true: float,
    lo: float,
    hi: float,
) -> bool:
    """Whether flipping the node keeps both sides in the balance window."""
    new_weight_true = (
        weight_true - node_weight if on_true_side else weight_true + node_weight
    )
    return lo <= new_weight_true <= hi


def fm_pass(
    graph: WeightedUndirectedGraph,
    side: List[bool],
    max_imbalance: float,
) -> float:
    """One FM pass; mutates *side* in place, returns the cut improvement.

    The balance constraint keeps each part's node weight within
    ``[0.5 - max_imbalance, 0.5 + max_imbalance]`` of the total.  The
    heap may hold stale gain entries; entries are validated against the
    live ``gains`` array on pop (lazy deletion).  Infeasible nodes are
    simply skipped on pop — their entry is re-pushed the next time a
    neighbour's move changes their gain, and a final sweep re-examines
    skipped nodes once, so a node blocked early can still move after the
    balance shifts.
    """
    n = graph.num_nodes
    total = graph.total_node_weight()
    lo = total * (0.5 - max_imbalance)
    hi = total * (0.5 + max_imbalance)
    weight_true = sum(graph.node_weight[u] for u in range(n) if side[u])

    gains = _gains(graph, side)
    heap: List[Tuple[float, int]] = [(-gains[u], u) for u in range(n)]
    heapq.heapify(heap)
    locked = [False] * n

    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0
    moves: List[int] = []
    rounds_left = 2  # the heap is rebuilt once to revisit skipped nodes

    while True:
        moved_this_round = False
        while heap:
            neg_gain, u = heapq.heappop(heap)
            if locked[u]:
                continue
            if gains[u] != -neg_gain:
                continue  # stale entry; the fresh one is elsewhere in the heap
            if not _move_feasible(
                graph.node_weight[u], side[u], weight_true, lo, hi
            ):
                continue  # revisited in the next round if balance shifts
            # Execute the move.
            weight_true += (
                -graph.node_weight[u] if side[u] else graph.node_weight[u]
            )
            side[u] = not side[u]
            locked[u] = True
            cumulative += gains[u]
            moves.append(u)
            moved_this_round = True
            if cumulative > best_cumulative + 1e-15:
                best_cumulative = cumulative
                best_prefix = len(moves)
            # Update neighbour gains (u changed sides, so each incident
            # edge flipped between internal and external).
            for v, w in graph.adjacency[u].items():
                if locked[v]:
                    continue
                if side[v] == side[u]:
                    gains[v] -= 2.0 * w
                else:
                    gains[v] += 2.0 * w
                heapq.heappush(heap, (-gains[v], v))
        rounds_left -= 1
        if rounds_left <= 0 or not moved_this_round:
            break
        heap = [(-gains[u], u) for u in range(n) if not locked[u]]
        heapq.heapify(heap)

    # Roll back moves after the best prefix.
    for u in moves[best_prefix:]:
        side[u] = not side[u]
    return best_cumulative


def fm_refine(
    graph: WeightedUndirectedGraph,
    side: List[bool],
    max_imbalance: float,
    max_passes: int = 8,
) -> List[bool]:
    """Run FM passes until no pass improves the cut; returns *side*."""
    for _ in range(max_passes):
        improvement = fm_pass(graph, side, max_imbalance)
        if improvement <= 1e-12:
            break
    return side
