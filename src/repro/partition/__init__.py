"""Balanced graph partitioning (multilevel METIS-substitute)."""

from .wgraph import WeightedUndirectedGraph
from .coarsen import heavy_edge_matching, contract, coarsen_once
from .initial import (
    greedy_growing_bisection,
    spectral_bisection,
    initial_bisection,
)
from .refine import fm_refine, fm_pass
from .bipartition import (
    multilevel_bisection,
    bisect_uncertain_cluster,
    ratio_cut_objective,
    random_bisection,
)

__all__ = [
    "WeightedUndirectedGraph",
    "heavy_edge_matching",
    "contract",
    "coarsen_once",
    "greedy_growing_bisection",
    "spectral_bisection",
    "initial_bisection",
    "fm_refine",
    "fm_pass",
    "multilevel_bisection",
    "bisect_uncertain_cluster",
    "ratio_cut_objective",
    "random_bisection",
]
