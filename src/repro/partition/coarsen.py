"""Heavy-edge-matching coarsening (multilevel phase 1).

Following METIS [22], the graph is repeatedly shrunk by computing a
*heavy-edge matching* — visiting nodes in random order and matching each
unmatched node with the unmatched neighbour joined by the heaviest edge —
and collapsing matched pairs.  Heavy edges disappear inside coarse nodes,
so the cut weight of any coarse bipartition (and hence the refined final
cut) tends to be small, which is exactly the objective of the RQ-tree's
Problem 3 (minimize the boundary ``-log(1-p)`` mass).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .wgraph import WeightedUndirectedGraph

__all__ = ["heavy_edge_matching", "contract", "coarsen_once"]


def heavy_edge_matching(
    graph: WeightedUndirectedGraph, rng: random.Random
) -> List[int]:
    """Compute a heavy-edge matching.

    Returns ``mate`` where ``mate[u]`` is the node matched with *u*
    (``mate[u] == u`` for unmatched nodes).  Nodes are visited in random
    order; each picks its heaviest still-unmatched neighbour.
    """
    n = graph.num_nodes
    mate = list(range(n))
    order = list(range(n))
    rng.shuffle(order)
    for u in order:
        if mate[u] != u:
            continue
        best_v = -1
        best_w = -1.0
        for v, w in graph.adjacency[u].items():
            if mate[v] == v and v != u and w > best_w:
                best_v = v
                best_w = w
        if best_v >= 0:
            mate[u] = best_v
            mate[best_v] = u
    return mate


def contract(
    graph: WeightedUndirectedGraph, mate: List[int]
) -> Tuple[WeightedUndirectedGraph, List[int]]:
    """Collapse matched pairs into coarse nodes.

    Returns the coarse graph and the projection ``coarse_of`` mapping
    each fine node to its coarse node id.  Edge weights between coarse
    nodes accumulate; edges internal to a pair vanish; node weights add.
    """
    n = graph.num_nodes
    coarse_of = [-1] * n
    next_id = 0
    for u in range(n):
        if coarse_of[u] != -1:
            continue
        v = mate[u]
        coarse_of[u] = next_id
        if v != u:
            coarse_of[v] = next_id
        next_id += 1
    node_weights = [0] * next_id
    for u in range(n):
        node_weights[coarse_of[u]] += graph.node_weight[u]
    coarse = WeightedUndirectedGraph(next_id, node_weights)
    for u in range(n):
        cu = coarse_of[u]
        for v, w in graph.adjacency[u].items():
            if u < v:  # visit each undirected edge once
                cv = coarse_of[v]
                if cu != cv:
                    coarse.add_edge(cu, cv, w)
    return coarse, coarse_of


def coarsen_once(
    graph: WeightedUndirectedGraph, rng: random.Random
) -> Optional[Tuple[WeightedUndirectedGraph, List[int]]]:
    """One coarsening step; None when matching no longer shrinks the graph.

    A step is considered unproductive when it removes less than 10% of
    the nodes (e.g. a graph with no edges matches nothing), which is the
    multilevel driver's signal to stop coarsening.
    """
    mate = heavy_edge_matching(graph, rng)
    matched_pairs = sum(1 for u in range(graph.num_nodes) if mate[u] > u)
    if matched_pairs < max(1, graph.num_nodes // 10):
        return None
    return contract(graph, mate)
