"""Initial bisection of the coarsest graph (multilevel phase 2).

Two strategies are combined and the better result (by cut weight subject
to the balance constraint) wins:

* **greedy graph growing** (the METIS default): BFS-grow a region from a
  random seed, always absorbing the frontier node with the largest
  connection weight into the region, until half the total node weight is
  absorbed; repeated from several seeds;
* **spectral bisection**: sign-split around the median of the Fiedler
  vector of the weighted Laplacian (numpy dense eigendecomposition —
  the coarsest graph is small by construction, so this is cheap).
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Tuple

from .wgraph import WeightedUndirectedGraph

__all__ = ["greedy_growing_bisection", "spectral_bisection", "initial_bisection"]


def _balance_ok(
    graph: WeightedUndirectedGraph, side: List[bool], max_imbalance: float
) -> bool:
    total = graph.total_node_weight()
    weight_true = sum(
        graph.node_weight[u] for u in range(graph.num_nodes) if side[u]
    )
    lo = total * (0.5 - max_imbalance)
    hi = total * (0.5 + max_imbalance)
    return lo <= weight_true <= hi


def greedy_growing_bisection(
    graph: WeightedUndirectedGraph,
    rng: random.Random,
    num_seeds: int = 4,
) -> List[bool]:
    """Best-of-*num_seeds* greedy region growing.

    Returns the side indicator of the grown region.  Always produces a
    bisection with region weight as close as possible to half the total
    (the last absorbed node may overshoot slightly, as in METIS).
    """
    n = graph.num_nodes
    total = graph.total_node_weight()
    target = total / 2.0
    best_side: Optional[List[bool]] = None
    best_cut = float("inf")
    seeds = [rng.randrange(n) for _ in range(max(1, num_seeds))]
    for seed in seeds:
        side = [False] * n
        side[seed] = True
        weight = graph.node_weight[seed]
        # Max-heap of frontier nodes by connection weight into the region.
        gain = {v: w for v, w in graph.adjacency[seed].items()}
        heap = [(-w, v) for v, w in gain.items()]
        heapq.heapify(heap)
        while weight < target:
            grown = False
            while heap:
                neg_w, v = heapq.heappop(heap)
                if side[v] or gain.get(v, None) != -neg_w:
                    continue  # stale entry
                side[v] = True
                weight += graph.node_weight[v]
                for nbr, w in graph.adjacency[v].items():
                    if not side[nbr]:
                        gain[nbr] = gain.get(nbr, 0.0) + w
                        heapq.heappush(heap, (-gain[nbr], nbr))
                grown = True
                break
            if not grown:
                # Disconnected remainder: jump to an arbitrary outside node.
                outside = next((v for v in range(n) if not side[v]), None)
                if outside is None:
                    break
                side[outside] = True
                weight += graph.node_weight[outside]
                for nbr, w in graph.adjacency[outside].items():
                    if not side[nbr]:
                        gain[nbr] = gain.get(nbr, 0.0) + w
                        heapq.heappush(heap, (-gain[nbr], nbr))
        cut = graph.cut_weight(side)
        if cut < best_cut and any(side) and not all(side):
            best_cut = cut
            best_side = side
    if best_side is None:  # pathological (n <= 1); split arbitrarily
        best_side = [u < n // 2 for u in range(n)]
    return best_side


def spectral_bisection(
    graph: WeightedUndirectedGraph,
) -> Optional[List[bool]]:
    """Fiedler-vector sign split (weighted by node weight at the median).

    Returns ``None`` when numpy is unavailable or the graph is too small
    for a meaningful spectrum.
    """
    n = graph.num_nodes
    if n < 4:
        return None
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    laplacian = np.zeros((n, n))
    for u in range(n):
        for v, w in graph.adjacency[u].items():
            laplacian[u, v] -= w
            laplacian[u, u] += w
    try:
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return None
    # Fiedler vector: eigenvector of the second-smallest eigenvalue.
    fiedler = eigenvectors[:, 1]
    # Split at the weighted median so the halves are weight-balanced.
    order = sorted(range(n), key=lambda u: fiedler[u])
    total = graph.total_node_weight()
    side = [False] * n
    weight = 0
    for u in order:
        if weight >= total / 2.0:
            break
        side[u] = True
        weight += graph.node_weight[u]
    if not any(side) or all(side):
        return None
    return side


def initial_bisection(
    graph: WeightedUndirectedGraph,
    rng: random.Random,
    max_imbalance: float,
) -> List[bool]:
    """Pick the best feasible bisection among the available strategies."""
    candidates: List[List[bool]] = [greedy_growing_bisection(graph, rng)]
    spectral = spectral_bisection(graph)
    if spectral is not None:
        candidates.append(spectral)

    def score(side: List[bool]) -> Tuple[int, float]:
        # Feasible (balanced) bisections sort before infeasible ones;
        # ties broken by cut weight.
        feasible = 0 if _balance_ok(graph, side, max_imbalance) else 1
        return (feasible, graph.cut_weight(side))

    return min(candidates, key=score)
