"""Multilevel balanced bisection — the library's METIS substitute.

The RQ-tree builder (paper, Section 6, Algorithm 2) requires a balanced
bi-partition of every cluster minimizing the ratio-cut objective of
Problem 3, for which the authors call METIS [22].  METIS is a C library;
this module reimplements the multilevel scheme it popularized:

1. **coarsen** by heavy-edge matching (:mod:`repro.partition.coarsen`)
   until the graph is small,
2. compute an **initial bisection** of the coarsest graph
   (:mod:`repro.partition.initial`),
3. **project and refine** back up through the levels with
   Fiduccia–Mattheyses passes (:mod:`repro.partition.refine`).

The public entry points are :func:`multilevel_bisection` (works on the
internal weighted undirected graph) and :func:`bisect_uncertain_cluster`
(adapts an uncertain-graph cluster: undirected view, weights
``-log(1 - p)``, as prescribed by Theorem 6).
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import PartitionError
from ..graph.uncertain import UncertainGraph
from .coarsen import coarsen_once
from .initial import initial_bisection
from .refine import fm_refine
from .wgraph import WeightedUndirectedGraph

__all__ = [
    "multilevel_bisection",
    "bisect_uncertain_cluster",
    "ratio_cut_objective",
    "random_bisection",
]

#: Stop coarsening below this many nodes.
_COARSEST_SIZE = 32


def ratio_cut_objective(
    graph: WeightedUndirectedGraph, side: Sequence[bool]
) -> float:
    """The MIN-RATIO-CUT objective ``cut * (1/|C1| + 1/|C2|)``.

    Theorem 6 of the paper shows minimizing this on weights
    ``-log(1 - p)`` is equivalent to maximizing the Problem 3 objective
    (the balanced product of the clusters' ``1 - U_out`` bounds).  Lower
    is better; an empty side scores ``inf``.
    """
    size_true = sum(
        graph.node_weight[u] for u in range(graph.num_nodes) if side[u]
    )
    size_false = graph.total_node_weight() - size_true
    if size_true == 0 or size_false == 0:
        return math.inf
    cut = graph.cut_weight(list(side))
    return cut * (1.0 / size_true + 1.0 / size_false)


def random_bisection(
    graph: WeightedUndirectedGraph, rng: random.Random
) -> List[bool]:
    """A weight-balanced random split (ablation baseline, no cut awareness)."""
    order = list(range(graph.num_nodes))
    rng.shuffle(order)
    total = graph.total_node_weight()
    side = [False] * graph.num_nodes
    weight = 0
    for u in order:
        if weight >= total / 2.0:
            break
        side[u] = True
        weight += graph.node_weight[u]
    return side


def multilevel_bisection(
    graph: WeightedUndirectedGraph,
    max_imbalance: float = 0.1,
    seed: Optional[int] = None,
) -> List[bool]:
    """Balanced bisection via coarsen / initial-partition / refine.

    Returns a boolean side indicator per node.  Both sides are guaranteed
    non-empty for graphs with at least two nodes.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    if n == 1:
        return [False]
    if n == 2:
        return [True, False]
    rng = random.Random(seed)

    # Phase 1: coarsen.
    levels: List[WeightedUndirectedGraph] = [graph]
    projections: List[List[int]] = []
    current = graph
    while current.num_nodes > _COARSEST_SIZE:
        step = coarsen_once(current, rng)
        if step is None:
            break
        current, coarse_of = step
        levels.append(current)
        projections.append(coarse_of)

    # Phase 2: initial bisection of the coarsest level.
    side = initial_bisection(levels[-1], rng, max_imbalance)
    side = fm_refine(levels[-1], side, max_imbalance)

    # Phase 3: project back and refine at every level.
    for level in range(len(levels) - 2, -1, -1):
        coarse_of = projections[level]
        fine_side = [side[coarse_of[u]] for u in range(levels[level].num_nodes)]
        side = fm_refine(levels[level], fine_side, max_imbalance)

    _ensure_both_sides(graph, side, rng)
    return side


def _ensure_both_sides(
    graph: WeightedUndirectedGraph, side: List[bool], rng: random.Random
) -> None:
    """Force a non-degenerate split (RQ-tree clusters must shrink)."""
    if any(side) and not all(side):
        return
    flip = rng.randrange(graph.num_nodes)
    side[flip] = not side[flip]


def bisect_uncertain_cluster(
    graph: UncertainGraph,
    cluster: Sequence[int],
    max_imbalance: float = 0.1,
    seed: Optional[int] = None,
    strategy: str = "multilevel",
) -> Tuple[Set[int], Set[int]]:
    """Bisect a cluster of an uncertain graph per Theorem 6.

    Builds the undirected weighted view of the subgraph induced by
    *cluster* (weights ``-log(1 - p(a))``, antiparallel arcs accumulated)
    and runs the selected bisection strategy.  Returns the two child
    clusters as sets of original node ids.

    Parameters
    ----------
    strategy:
        ``"multilevel"`` (default, the METIS-like pipeline) or
        ``"random"`` (balanced random split, ablation baseline).
    """
    cluster = list(dict.fromkeys(cluster))
    if len(cluster) < 2:
        raise PartitionError("cannot bisect a cluster with fewer than 2 nodes")
    local_of = {node: i for i, node in enumerate(cluster)}
    wgraph = WeightedUndirectedGraph(len(cluster))
    for node in cluster:
        u = local_of[node]
        for v_node, p in graph.successors(node).items():
            v = local_of.get(v_node)
            if v is not None and u != v:
                wgraph.add_edge(u, v, -math.log(max(1.0 - p, 1e-12)))
    rng = random.Random(seed)
    if strategy == "multilevel":
        side = multilevel_bisection(wgraph, max_imbalance, seed=seed)
    elif strategy == "random":
        side = random_bisection(wgraph, rng)
        _ensure_both_sides(wgraph, side, rng)
    else:
        raise PartitionError(f"unknown bisection strategy {strategy!r}")
    first = {cluster[i] for i in range(len(cluster)) if side[i]}
    second = {cluster[i] for i in range(len(cluster)) if not side[i]}
    if not first or not second:
        # _ensure_both_sides guards this, but keep a hard failure rather
        # than an infinite builder loop if it ever regresses.
        raise PartitionError("bisection produced an empty side")
    return first, second
