"""Weighted undirected graph used internally by the partitioner.

The RQ-tree builder (paper, Theorem 6) reduces cluster bisection to
MIN-RATIO-CUT on an *undirected* graph with arc weights
``w(a) = -log(1 - p(a))``.  This module holds the small dedicated graph
structure the multilevel partitioner operates on: dense integer ids,
float edge weights, and integer node weights (a coarse node's weight is
the number of original nodes collapsed into it, which the balance
constraint and the ratio-cut denominators are measured in).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import PartitionError

__all__ = ["WeightedUndirectedGraph"]


class WeightedUndirectedGraph:
    """Undirected graph with float edge weights and int node weights."""

    __slots__ = ("adjacency", "node_weight")

    def __init__(self, num_nodes: int, node_weights: Sequence[int] = ()) -> None:
        if num_nodes < 0:
            raise PartitionError(f"bad node count {num_nodes}")
        self.adjacency: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        if node_weights:
            if len(node_weights) != num_nodes:
                raise PartitionError("node_weights length mismatch")
            self.node_weight: List[int] = list(node_weights)
        else:
            self.node_weight = [1] * num_nodes

    @classmethod
    def from_edge_weights(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int, float]],
        node_weights: Sequence[int] = (),
    ) -> "WeightedUndirectedGraph":
        """Build from ``(u, v, w)`` triples; parallel edges accumulate."""
        graph = cls(num_nodes, node_weights)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``."""
        if u == v:
            return
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise PartitionError(f"edge ({u}, {v}) references missing nodes")
        if weight < 0:
            raise PartitionError(f"edge weight must be non-negative: {weight}")
        self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
        self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight

    def total_node_weight(self) -> int:
        return sum(self.node_weight)

    def degree_weight(self, u: int) -> float:
        """Sum of incident edge weights of *u*."""
        return sum(self.adjacency[u].values())

    def cut_weight(self, side: Sequence[bool]) -> float:
        """Total weight of edges crossing the bipartition *side*."""
        total = 0.0
        for u, nbrs in enumerate(self.adjacency):
            if side[u]:
                for v, w in nbrs.items():
                    if not side[v]:
                        total += w
        return total
