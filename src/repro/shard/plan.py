"""Partition-aligned shard planning.

A shard plan splits the node set into ``K`` disjoint parts by applying
the RQ-tree's own balanced bisection (:func:`bisect_uncertain_cluster`,
paper Section 6 / Theorem 6) recursively — the same objective that makes
RQ-tree clusters good query units (few, unlikely arcs crossing the cut)
makes them good *distribution* units: a low-weight frontier means most
reliability mass stays inside a shard, so per-shard engines answer most
of each query locally and the cross-shard refinement pass stays small.

The plan is pure data: which shard owns each node, the per-shard node
lists, and the *frontier* — the arcs whose endpoints live in different
shards.  Everything downstream (per-shard engine construction in
:mod:`repro.shard.runtime`, scatter-gather routing in
:mod:`repro.shard.engine`) derives from it deterministically, seeded
through :mod:`repro.seeding` so the same ``(graph, shards, seed)``
always yields the same plan in every process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..errors import PartitionError
from ..graph.uncertain import UncertainGraph, WeightedArc
from ..partition.bipartition import bisect_uncertain_cluster
from ..seeding import derive_seed

__all__ = ["ShardPlan", "build_shard_plan"]


@dataclass(frozen=True)
class ShardPlan:
    """The K-way partition a sharded engine is built on.

    Attributes
    ----------
    num_shards:
        Number of parts ``K``.
    shard_of:
        ``shard_of[node]`` is the id of the shard owning *node*.
    shard_nodes:
        Per-shard sorted tuples of global node ids; together they
        partition ``0 .. n-1``.  A node's *local* id inside its shard is
        its index in this tuple (the relabelling
        :meth:`SubgraphView.materialize` applies).
    frontier_arcs:
        Every arc ``(u, v, p)`` whose endpoints belong to different
        shards.  These are the arcs no per-shard engine sees; the
        gateway's refinement pass is what accounts for them.
    num_arcs:
        Arc count of the graph the plan was built from (for the
        frontier fraction).
    seed:
        Root seed the recursive bisection was derived from.
    """

    num_shards: int
    shard_of: Tuple[int, ...]
    shard_nodes: Tuple[Tuple[int, ...], ...]
    frontier_arcs: Tuple[WeightedArc, ...]
    num_arcs: int
    seed: int

    @property
    def num_nodes(self) -> int:
        return len(self.shard_of)

    @property
    def frontier_fraction(self) -> float:
        """Fraction of all arcs that cross shard boundaries."""
        if self.num_arcs == 0:
            return 0.0
        return len(self.frontier_arcs) / self.num_arcs

    def owner(self, node: int) -> int:
        """The shard id owning *node*."""
        return self.shard_of[node]

    def describe(self) -> str:
        """One-line human-readable summary (CLI / logs)."""
        sizes = ", ".join(str(len(part)) for part in self.shard_nodes)
        return (
            f"{self.num_shards} shard(s) of sizes [{sizes}]; "
            f"{len(self.frontier_arcs)}/{self.num_arcs} arcs "
            f"({self.frontier_fraction:.1%}) on the frontier"
        )


def _split(
    graph: UncertainGraph,
    nodes: Sequence[int],
    k: int,
    seed: int,
    max_imbalance: float,
    strategy: str,
    parts: List[List[int]],
    counter: List[int],
) -> None:
    """Recursively bisect *nodes* into *k* parts, appending to *parts*."""
    if k == 1:
        parts.append(sorted(nodes))
        return
    split_seed = derive_seed(seed, "shard.plan", counter[0])
    counter[0] += 1
    left, right = bisect_uncertain_cluster(
        graph,
        sorted(nodes),
        max_imbalance=max_imbalance,
        seed=split_seed,
        strategy=strategy,
    )
    # The side with more nodes hosts the larger sub-count; ties broken
    # towards `left` so the recursion stays deterministic.
    k_small, k_large = k // 2, k - k // 2
    if len(left) >= len(right):
        large, small = left, right
    else:
        large, small = right, left
    if len(small) < k_small or len(large) < k_large:
        raise PartitionError(
            f"cannot split a {len(nodes)}-node cluster into {k} shards: "
            f"bisection produced sides of {len(small)} and {len(large)} "
            "nodes; use fewer shards"
        )
    _split(graph, large, k_large, seed, max_imbalance, strategy,
           parts, counter)
    _split(graph, small, k_small, seed, max_imbalance, strategy,
           parts, counter)


def build_shard_plan(
    graph: UncertainGraph,
    shards: int,
    seed: int = 0,
    max_imbalance: float = 0.1,
    strategy: str = "multilevel",
) -> ShardPlan:
    """Split *graph* into *shards* partition-aligned parts.

    The node set is bisected recursively with the RQ-tree's own
    balanced-cut machinery; every recursion level derives its own seed
    via :func:`repro.seeding.derive_seed` under the ``"shard.plan"``
    namespace, so plans are reproducible across processes.  ``K`` need
    not be a power of two — odd counts split as ``ceil(K/2)`` /
    ``floor(K/2)``, with the larger node side carrying the larger shard
    count (shard sizes are then uneven by up to ~2x, which the
    scatter-gather planner tolerates).

    Raises :class:`PartitionError` for an empty graph, ``shards < 1``,
    or ``shards > n``.
    """
    if shards < 1:
        raise PartitionError(f"shard count must be >= 1, got {shards}")
    n = graph.num_nodes
    if n == 0:
        raise PartitionError("cannot shard an empty graph")
    if shards > n:
        raise PartitionError(
            f"cannot split {n} node(s) into {shards} shards"
        )

    parts: List[List[int]] = []
    if shards == 1:
        parts.append(list(range(n)))
    else:
        _split(
            graph, range(n), shards, seed, max_imbalance, strategy,
            parts, counter=[0],
        )
    # Order shards by their smallest member so the numbering is a
    # property of the partition, not of the recursion shape.
    parts.sort(key=lambda part: part[0])

    shard_of = [0] * n
    for shard_id, members in enumerate(parts):
        for node in members:
            shard_of[node] = shard_id

    frontier: List[WeightedArc] = []
    if shards > 1:
        for u, v, p in graph.arcs():
            if shard_of[u] != shard_of[v]:
                frontier.append((u, v, p))

    covered: Set[int] = set()
    for members in parts:
        covered.update(members)
    if len(covered) != n:  # pragma: no cover - internal invariant
        raise PartitionError(
            "shard plan does not partition the node set "
            f"({len(covered)} of {n} nodes covered)"
        )

    return ShardPlan(
        num_shards=shards,
        shard_of=tuple(shard_of),
        shard_nodes=tuple(tuple(part) for part in parts),
        frontier_arcs=tuple(frontier),
        num_arcs=graph.num_arcs,
        seed=seed,
    )
