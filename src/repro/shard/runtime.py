"""Per-shard engine runtime: payload construction and sub-query handling.

One :class:`ShardRuntime` owns one shard's slice of the graph and a full
:class:`RQTreeEngine` built on it.  Both execution modes of the sharded
engine run the *same* runtime — ``mode="process"`` reconstructs it from
a picklable payload inside a spawned worker (:mod:`repro.shard.worker`),
``mode="inline"`` holds it in the gateway process — so the two modes
compute identical sub-query answers by construction.

A sub-query always runs the paper's LB pipeline (candidate generation +
most-likely-path verification) on the shard subgraph, whatever
verification method the gateway query asked for:

* the shard's *candidate set* seeds the gateway's refinement pool
  (lifted to global ids);
* the shard's *confirmed set* is globally sound — a path inside a shard
  subgraph is a path of the whole graph, so a local lower-bound
  certificate is a global one — and survives as a partial answer even
  when the gateway's refinement is cut short by a budget or a dead
  shard;
* sampling (for ``method="mc"``) happens once, at the gateway, on the
  merged pool, so MC verdict semantics match the single-engine path.

Everything in the payload and the request/response dicts is plain
picklable data (ints, floats, strings, lists, dicts) — the spawn-based
worker transport requires it, and it keeps the protocol inspectable.
With ``transport="shm"`` the graph bytes leave the payload entirely:
the shard subgraph travels as a shared-memory CSR segment
(:mod:`repro.shard.shm`) and the payload shrinks to scalars plus the
segment's field table.  Both transports rebuild the identical local
graph — same arc insertion order, hence the same adjacency-dict
iteration order and the same deterministic RQ-tree — so answers are
bit-for-bit equal across transports by construction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.engine import RQTreeEngine
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import QueryBudget
from ..resilience.faultinject import fault_point
from ..seeding import derive_seed
from .plan import ShardPlan

__all__ = ["ShardRuntime", "build_shard_payload"]


def build_shard_payload(
    graph: UncertainGraph,
    plan: ShardPlan,
    shard_id: int,
    seed: int = 0,
    flow_engine: str = "dinic",
    max_imbalance: float = 0.1,
    strategy: str = "multilevel",
    transport: str = "pickle",
    epoch: int = 0,
) -> Dict[str, object]:
    """The picklable construction recipe for one shard's runtime.

    Contains the shard's induced subgraph — as a relabelled arc list
    (``transport="pickle"``) or as the attach-meta of a shared-memory
    CSR segment (``transport="shm"``, see :mod:`repro.shard.shm`; the
    caller owns the published segment and must release it through
    ``shm.registry``) — plus everything needed to rebuild its RQ-tree
    deterministically.  The per-shard build seed is derived under the
    ``"shard.build"`` namespace, so distinct shards (and distinct root
    seeds) get statistically independent index-construction streams.
    """
    if transport not in ("pickle", "shm"):
        raise ValueError(
            f"unknown shard transport {transport!r}; "
            "expected 'pickle' or 'shm'"
        )
    members = plan.shard_nodes[shard_id]
    local_of = {node: index for index, node in enumerate(members)}
    member_set = set(members)
    payload: Dict[str, object] = {
        "shard_id": shard_id,
        "num_nodes": len(members),
        "transport": transport,
        "build_seed": derive_seed(seed, "shard.build", shard_id),
        "flow_engine": flow_engine,
        "max_imbalance": max_imbalance,
        "strategy": strategy,
        "epoch": epoch,
    }
    if transport == "shm":
        from ..accel.csr import csr_snapshot
        from . import shm

        local = UncertainGraph(len(members))
        for u in members:
            for v, p in graph.successors(u).items():
                if v in member_set:
                    local.add_arc(local_of[u], local_of[v], p)
        payload["shm"] = shm.publish_csr(csr_snapshot(local), members)
        return payload
    arcs: List[List[object]] = []
    for u in members:
        for v, p in graph.successors(u).items():
            if v in member_set:
                arcs.append([local_of[u], local_of[v], p])
    payload["arcs"] = arcs
    payload["global_ids"] = list(members)
    return payload


class ShardRuntime:
    """One shard's graph slice plus its private RQ-tree engine."""

    def __init__(self, payload: Dict[str, object]) -> None:
        self.shard_id: int = payload["shard_id"]
        self._segment_name: Optional[str] = None
        self._maintainer = None
        if payload.get("transport", "pickle") == "shm":
            graph, self._global_ids = self._from_segment(
                payload["shm"], payload.get("epoch", 0)
            )
            self._segment_name = payload["shm"]["name"]
        else:
            self._global_ids = list(payload["global_ids"])
            graph = UncertainGraph(payload["num_nodes"])
            for u, v, p in payload["arcs"]:
                graph.add_arc(u, v, p)
        graph.set_epoch(payload.get("epoch", 0))
        self._local_of = {
            node: index for index, node in enumerate(self._global_ids)
        }
        tree_document = payload.get("tree_json")
        if tree_document is not None:
            # Supervised respawn fast path: the supervisor cached the
            # first worker's serialized RQ-tree next to the payload, so
            # a replacement worker deserializes the index instead of
            # re-running the partition cascade.  Deterministic builds
            # make the two routes equivalent: from_json validates and
            # reconstructs the exact tree to_json saw.
            from ..core.rqtree import RQTree

            self._engine = RQTreeEngine(
                graph,
                RQTree.from_json(tree_document),
                flow_engine=payload["flow_engine"],
            )
        else:
            self._engine = RQTreeEngine.build(
                graph,
                max_imbalance=payload["max_imbalance"],
                seed=payload["build_seed"],
                strategy=payload["strategy"],
                flow_engine=payload["flow_engine"],
            )

    @staticmethod
    def _from_segment(meta: Dict[str, object], epoch: int = 0):
        """Rebuild the local graph from a shared-memory CSR segment.

        Arcs are replayed from the forward CSR in row order — the same
        order the pickle transport's arc list was emitted in — so the
        rebuilt adjacency dicts iterate identically and the RQ-tree
        build is bit-for-bit the same.  The mapped (zero-copy) arrays
        are then installed as the graph's CSR cache, so any numeric
        kernel run in this worker reads the segment directly instead of
        re-packing.
        """
        from ..accel.csr import CSRGraph
        from . import shm

        arrays, global_ids = shm.attach_csr(meta)
        num_nodes = meta["num_nodes"]
        graph = UncertainGraph(num_nodes)
        indptr, indices, probs = (
            arrays["indptr"], arrays["indices"], arrays["probs"],
        )
        for u in range(num_nodes):
            for k in range(indptr[u], indptr[u + 1]):
                graph.add_arc(u, int(indices[k]), float(probs[k]))
        graph._csr_cache = CSRGraph.from_arrays(
            arrays,
            num_nodes=num_nodes,
            num_arcs=meta["num_arcs"],
            version=graph.version,
            epoch=epoch,
        )
        return graph, [int(node) for node in global_ids]

    @property
    def engine(self) -> RQTreeEngine:
        # After live updates the maintainer may have rebuilt and
        # replaced the engine; it is the authority once it exists.
        if self._maintainer is not None:
            return self._maintainer.engine
        return self._engine

    @property
    def epoch(self) -> int:
        return self.engine.graph.epoch

    @property
    def tree_height(self) -> int:
        return self.engine.tree.height

    @property
    def num_nodes(self) -> int:
        return len(self._global_ids)

    def index_json(self) -> Dict[str, object]:
        """This shard's serialized RQ-tree (``RQTree.to_json``).

        Fetched once by the supervisor after start-up and cached into
        the shard's payload, so a respawned worker skips the index
        build — respawn then costs the payload bytes plus tree
        deserialization, not a partition cascade.
        """
        return self.engine.tree.to_json()

    def apply_updates(self, spec: Dict[str, object]) -> Dict[str, object]:
        """Apply one epoch's update slice to this shard, in place.

        ``spec`` carries ``ops`` (local-id ``(op, u, v, p)`` tuples),
        the target ``epoch``, and — on the shm transport — the attach
        meta of the new epoch's segment (``shm``).  The ops run through
        a :class:`~repro.core.maintenance.DynamicRQTreeEngine` wrapped
        around the live engine, so damaged subtree clusters are
        repaired in place rather than rebuilt from scratch.  The CSR
        cache is then hot-swapped: the new segment's zero-copy arrays
        replace the old mapping, which is detached so worker address
        space stays one-segment-per-shard.  The ack (this return value)
        is the gateway's drain barrier — the worker is single-threaded,
        so by the time it answers, every sub-query admitted before the
        update has finished against the old segment.
        """
        fault_point("shard.update")
        if self._maintainer is None:
            from ..core.maintenance import DynamicRQTreeEngine

            self._maintainer = DynamicRQTreeEngine.from_engine(self._engine)
        applied = self._maintainer.apply(spec.get("ops", ()))
        graph = self._maintainer.graph
        epoch = spec.get("epoch")
        if epoch is not None:
            graph.set_epoch(epoch)
        meta = spec.get("shm")
        if meta is not None:
            from ..accel.csr import CSRGraph
            from . import shm

            arrays, _ = shm.attach_csr(meta)
            with graph._csr_lock:
                graph._csr_cache = CSRGraph.from_arrays(
                    arrays,
                    num_nodes=meta["num_nodes"],
                    num_arcs=meta["num_arcs"],
                    version=graph.version,
                    epoch=graph.epoch,
                )
            old = self._segment_name
            self._segment_name = meta["name"]
            if old is not None and old != meta["name"]:
                shm.detach(old)
        return {
            "shard_id": self.shard_id,
            "applied": applied,
            "epoch": graph.epoch,
            "tree_height": self.tree_height,
        }

    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one sub-query; ids in and out are *global*.

        The request carries ``sources`` (global ids owned by this
        shard), ``eta``, ``multi_source_mode``, ``max_hops``, and an
        optional serialized budget (the gateway's remaining allowance at
        send time).  The response carries the candidate/confirmed sets
        lifted back to global ids, plus the
        instrumentation the gateway merges into its
        :class:`CandidateResult`.
        """
        fault_point("shard.handle")
        started = time.perf_counter()
        sources = [self._local_of[node] for node in request["sources"]]
        budget_spec = request.get("budget")
        budget: Optional[QueryBudget] = (
            QueryBudget(**budget_spec) if budget_spec else None
        )
        result = self.engine.query(
            sources,
            request["eta"],
            method="lb",
            multi_source_mode=request.get("multi_source_mode", "greedy"),
            max_hops=request.get("max_hops"),
            budget=budget,
        )
        lift = self._global_ids
        candidate_result = result.candidate_result
        return {
            "shard_id": self.shard_id,
            "epoch": self.epoch,
            "candidates": [
                lift[node] for node in candidate_result.candidates
            ],
            "kept": [lift[node] for node in result.nodes],
            # Note: no per-node status map — the gateway recomputes
            # statuses during refinement, so shipping them would only
            # bloat the per-query response.
            "seconds": time.perf_counter() - started,
            "candidate_seconds": result.candidate_seconds,
            "verification_seconds": result.verification_seconds,
            "tree_height": result.tree_height,
            "degraded": result.degraded,
            "degraded_reason": result.degraded_reason,
            "clusters_visited": candidate_result.clusters_visited,
            "flow_calls": candidate_result.flow_calls,
            "max_subgraph_nodes": candidate_result.max_subgraph_nodes,
            "max_subgraph_arcs": candidate_result.max_subgraph_arcs,
        }
