"""repro.shard — partition-aligned multi-process serving.

Splits the graph into ``K`` shards along the RQ-tree's own balanced
cuts, builds an independent engine per shard (one spawned worker
process each, or inline for tests), and answers queries with a
scatter-gather planner plus a bounded cross-shard refinement pass.

* :mod:`repro.shard.plan` — :class:`ShardPlan` /
  :func:`build_shard_plan`: the K-way partition, node ownership, and
  the frontier arc set;
* :mod:`repro.shard.runtime` — :class:`ShardRuntime`: one shard's
  subgraph + RQ-tree engine, shared verbatim by both execution modes;
* :mod:`repro.shard.worker` — the spawn-safe worker loop, the
  process / inline clients, and the warm-standby pool;
* :mod:`repro.shard.supervisor` — :class:`ShardSupervisor`: liveness
  pings, supervised respawn, per-shard circuit breakers, redispatch,
  and hedged scatter-gather (the self-healing layer);
* :mod:`repro.shard.engine` — :class:`ShardedRQTreeEngine`: the
  query facade (same signature as :class:`~repro.core.engine.RQTreeEngine`).

See ``docs/ARCHITECTURE.md`` ("Sharded serving" and "Failure domains &
recovery") for the query lifecycle and the exactness/degradation
contract.
"""

from .engine import ShardedRQTreeEngine
from .plan import ShardPlan, build_shard_plan
from .runtime import ShardRuntime, build_shard_payload
from .supervisor import ShardSupervisor, SupervisorPolicy
from .worker import InlineShardClient, ProcessShardClient, WarmStandby

__all__ = [
    "ShardPlan",
    "build_shard_plan",
    "ShardRuntime",
    "build_shard_payload",
    "InlineShardClient",
    "ProcessShardClient",
    "WarmStandby",
    "ShardSupervisor",
    "SupervisorPolicy",
    "ShardedRQTreeEngine",
]
