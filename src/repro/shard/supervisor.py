"""Shard supervision: liveness, respawn, circuit breaking, hedging.

:class:`ShardSupervisor` turns the shard tier from *fail-degraded* into
*fail-recover*.  Unsupervised, a SIGKILLed worker poisons every later
query: the engine marks the shard unavailable forever and the answer
quality contract leans entirely on gateway refinement.  Supervised,
each shard runs a small per-shard state machine::

    healthy --(ping timeout | queue watermark)--> suspect
    healthy/suspect --(process death | ping error)--> open-circuit
    open-circuit --(backoff elapsed, respawn ok)--> half-open
    half-open --(probe answered)--> healthy
    half-open --(probe failed/timed out)--> open-circuit
    open-circuit --(crash-loop budget exhausted)--> parked

* **Liveness** — a monitor thread pings every worker each sweep (a
  queue round-trip, so it also proves the serve loop drains) and reads
  its in-flight queue depth; a depth above the watermark marks the
  shard *suspect* (slow is not dead — suspects still serve).
* **Respawn** — a dead worker is replaced by activating a pre-spawned
  :class:`~repro.shard.worker.WarmStandby` (interpreter + imports paid
  in advance) with the shard's original payload.  The shm CSR segment
  is still alive — the gateway owns it — so the replacement re-attaches
  by name, and the supervisor caches each worker's serialized RQ-tree
  into the payload so the rebuild skips the partition cascade.  Respawn
  therefore costs roughly the ~1.2KB payload plus tree deserialization
  (see ``benchmarks/bench_supervisor.py``).
* **Backoff** — failed respawn attempts are retried under exponential
  backoff with seeded jitter; more than ``max_respawns`` attempts
  within ``crash_window_seconds`` *parks* the shard as
  degraded-with-reason, ending the crash loop.
* **Redispatch** — a sub-query that was in flight on a dead worker is
  resubmitted (once) on the respawned one by :meth:`wait`, so the
  query completes instead of degrading whenever recovery beats the
  caller's deadline.
* **Hedging** — an optional straggler defence: when a healthy shard
  has not answered within a (p99-derived or fixed) delay, the shard's
  primary client is swapped to a fresh standby-backed worker and the
  sub-query is duplicated there; whichever lane answers first wins.
  The lb merge is idempotent (confirmed sets are unioned), so a
  duplicated sub-answer can never change the result.

Every transition is observable: ``shard.supervisor.*`` metrics,
:meth:`states` for ``/healthz``, and deterministic fault-injection
points (``supervisor.respawn`` / ``supervisor.probe`` /
``supervisor.hedge`` / ``supervisor.redispatch``) for drills.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import InjectedFault, ShardUnavailableError
from ..resilience.faultinject import fault_point
from ..seeding import derive_seed
from .worker import InlineShardClient, ProcessShardClient, WarmStandby

__all__ = [
    "SHARD_HEALTHY",
    "SHARD_SUSPECT",
    "SHARD_OPEN",
    "SHARD_HALF_OPEN",
    "SHARD_PARKED",
    "ShardSupervisor",
    "SupervisorPolicy",
]

SHARD_HEALTHY = "healthy"
SHARD_SUSPECT = "suspect"
SHARD_OPEN = "open-circuit"
SHARD_HALF_OPEN = "half-open"
SHARD_PARKED = "parked"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables for the per-shard state machine."""

    #: Monitor sweep / liveness-ping period.
    ping_interval_seconds: float = 0.5
    #: An unanswered ping older than this marks the shard suspect; a
    #: half-open probe older than this trips the circuit again.
    ping_timeout_seconds: float = 5.0
    #: In-flight calls on one worker above which it is marked suspect.
    queue_depth_watermark: int = 64
    #: Exponential backoff between failed respawn attempts.
    backoff_base_seconds: float = 0.05
    backoff_max_seconds: float = 2.0
    #: Relative jitter applied to each backoff (anti-thundering-herd).
    backoff_jitter: float = 0.25
    #: Crash-loop budget: more than this many respawn attempts within
    #: ``crash_window_seconds`` parks the shard.
    max_respawns: int = 5
    crash_window_seconds: float = 60.0
    #: How long a respawned worker may take to report ready.
    ready_timeout_seconds: float = 300.0
    #: Warm standbys kept spawned (process mode; 0 falls back to cold
    #: spawns, which work but miss the respawn-latency target).
    standby_workers: int = 1
    #: Cache each worker's serialized RQ-tree into its payload so
    #: respawns skip the index build.
    cache_index: bool = True


class _Dispatch:
    """One supervised sub-query lane: (shard, client, handle)."""

    __slots__ = ("shard_id", "client", "handle", "request")

    def __init__(self, shard_id, client, handle, request) -> None:
        self.shard_id = shard_id
        self.client = client
        self.handle = handle
        self.request = request


class _ShardSlot:
    """Mutable supervision state for one shard."""

    def __init__(self, shard_id: int, payload: Dict[str, object],
                 client) -> None:
        self.shard_id = shard_id
        self.payload = payload
        self.client = client
        self.lock = threading.Lock()
        self.state = SHARD_HEALTHY
        self.state_reason: Optional[str] = None
        #: Set exactly while state == healthy (redispatch waits on it).
        self.healthy = threading.Event()
        self.healthy.set()
        #: Monotonic times of recent respawn attempts (crash window).
        self.respawn_times: deque = deque()
        #: Consecutive failed respawn attempts (backoff exponent).
        self.failed_attempts = 0
        #: Successful respawns over the slot's lifetime (for /healthz).
        self.respawns = 0
        self.next_attempt_at = 0.0
        self.probe_handle = None
        self.probe_sent_at = 0.0
        self.ping_handle = None
        self.ping_sent_at = 0.0
        #: Recent sub-query latencies (drives the p99 hedge delay).
        self.latencies: deque = deque(maxlen=128)
        #: Demoted straggler clients still draining an answer.
        self.retired: List[object] = []


class ShardSupervisor:
    """Monitors, respawns, and circuit-breaks a set of shard clients.

    Owned by :class:`~repro.shard.engine.ShardedRQTreeEngine` when built
    with ``supervise=True``.  The engine routes every submit/wait
    through the supervisor; the supervisor owns the *current* client of
    each shard (the engine's original client list goes stale after the
    first respawn).
    """

    def __init__(
        self,
        clients,
        payloads,
        mode: str,
        policy: Optional[SupervisorPolicy] = None,
        seed: int = 0,
    ) -> None:
        if len(clients) != len(payloads):
            raise ValueError("one payload per client required")
        self.mode = mode
        self.policy = policy or SupervisorPolicy()
        self._rng = random.Random(derive_seed(seed, "shard.supervisor"))
        self._slots = [
            _ShardSlot(payload["shard_id"], payload, client)
            for client, payload in zip(clients, payloads)
        ]
        self._standbys: List[WarmStandby] = []
        self._standby_lock = threading.Lock()
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the standby pool, the monitor, and the index prefetch."""
        if self.mode == "process":
            with self._standby_lock:
                for _ in range(self.policy.standby_workers):
                    self._standbys.append(WarmStandby())
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-shard-supervisor",
            daemon=True,
        )
        self._monitor.start()
        if self.policy.cache_index:
            threading.Thread(
                target=self._prefetch_indexes,
                name="repro-shard-supervisor-index",
                daemon=True,
            ).start()

    def close(self) -> None:
        """Stop supervision and every owned client (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._kick.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for slot in self._slots:
            with slot.lock:
                clients = [slot.client] + slot.retired
                slot.retired = []
            for client in clients:
                try:
                    client.close()
                except Exception:  # pragma: no cover - best effort
                    pass
        with self._standby_lock:
            standbys, self._standbys = self._standbys, []
        for standby in standbys:
            standby.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def states(self) -> Dict[int, Dict[str, object]]:
        """Per-shard state snapshot (surfaces on ``/healthz``)."""
        snapshot: Dict[int, Dict[str, object]] = {}
        for slot in self._slots:
            with slot.lock:
                snapshot[slot.shard_id] = {
                    "state": slot.state,
                    "reason": slot.state_reason,
                    "respawns": slot.respawns,
                    "queue_depth": getattr(slot.client, "queue_depth", 0),
                }
        return snapshot

    def client(self, shard_id: int):
        """The shard's *current* client (changes across respawns)."""
        slot = self._slots[shard_id]
        with slot.lock:
            return slot.client

    # ------------------------------------------------------------------
    # Live-update hooks
    # ------------------------------------------------------------------
    def update_payload(self, shard_id: int, payload: Dict[str, object]) -> None:
        """Swap a shard's respawn recipe for a new epoch's payload.

        Called by the live engine after streaming an update batch: a
        worker that dies from here on must respawn onto the *current*
        graph, not the one it booted with.  The cached ``tree_json`` is
        carried over — updates never make an RQ-tree wrong (any
        hierarchical partition is a correct index), so the respawned
        worker still skips the partition cascade.
        """
        slot = self._slots[shard_id]
        with slot.lock:
            tree_json = slot.payload.get("tree_json")
            if tree_json is not None and "tree_json" not in payload:
                payload = dict(payload)
                payload["tree_json"] = tree_json
            slot.payload = payload

    def reconfigure(self, clients, payloads) -> None:
        """Adopt a rebalanced shard topology (possibly a new shard count).

        Installs a fresh slot table over the new clients; the old slots
        are parked (never respawned) but their primary clients are NOT
        closed here — the caller owns the drain of in-flight queries
        against the old topology and closes them afterwards.  Retired
        straggler clients of the old slots are reaped immediately.
        """
        if len(clients) != len(payloads):
            raise ValueError("one payload per client required")
        new_slots = [
            _ShardSlot(payload["shard_id"], payload, client)
            for client, payload in zip(clients, payloads)
        ]
        old_slots, self._slots = self._slots, new_slots
        for slot in old_slots:
            with slot.lock:
                slot.state = SHARD_PARKED
                slot.state_reason = "superseded by rebalance"
                slot.healthy.clear()
                retired, slot.retired = slot.retired, []
            for client in retired:
                self._close_async(client)
        self._metrics().counter("shard.supervisor.reconfigures").inc()
        self._kick.set()
        if self.policy.cache_index and not self._stop.is_set():
            threading.Thread(
                target=self._prefetch_indexes,
                name="repro-shard-supervisor-index",
                daemon=True,
            ).start()

    def hedge_delay(self, shard_id: int) -> Optional[float]:
        """A p99-derived hedge delay for the shard, or ``None`` until
        enough latency samples exist to estimate a tail."""
        ordered = sorted(self._slots[shard_id].latencies)
        if len(ordered) < 8:
            return None
        p99 = ordered[min(len(ordered) - 1,
                          round(0.99 * (len(ordered) - 1)))]
        return min(max(1.5 * p99, 0.01), 1.0)

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------
    def submit(self, shard_id: int, request: Dict[str, object]) -> _Dispatch:
        """Dispatch one sub-query, honouring the circuit breaker.

        Open/parked shards fail fast (classic breaker semantics: new
        load never piles onto a respawning worker); the raised reason is
        structured so degraded answers say *why* the shard was skipped.
        """
        slot = self._slots[shard_id]
        with slot.lock:
            state, reason, client = slot.state, slot.state_reason, slot.client
        if state == SHARD_PARKED:
            raise ShardUnavailableError(shard_id, f"parked: {reason}")
        if state in (SHARD_OPEN, SHARD_HALF_OPEN):
            raise ShardUnavailableError(
                shard_id, f"circuit {state}: {reason or 'worker down'}"
            )
        try:
            handle = client.submit(request)
        except ShardUnavailableError:
            self.report_failure(shard_id, "submit found the worker gone")
            raise
        return _Dispatch(shard_id, client, handle, request)

    def wait(
        self,
        dispatch: _Dispatch,
        timeout: Optional[float] = None,
        attempt_timeout: Optional[float] = None,
        hedge_after: Optional[float] = None,
    ):
        """Await a dispatch with redispatch, bounded retry, and hedging.

        Returns ``(response, recovered)`` where ``recovered`` is True
        when the answer only arrived thanks to a supervisor
        intervention (respawn redispatch or straggler swap).  Raises
        :class:`ShardUnavailableError` when the shard could not answer
        within the caller's limits — exactly the unsupervised failure
        surface, so the engine's degraded-merge path is unchanged.

        ``timeout`` bounds the whole wait (budget-derived);
        ``attempt_timeout`` bounds each attempt and triggers the one
        bounded retry against a *replaced* worker (retrying on the same
        hung worker would just queue behind the hang).
        """
        slot = self._slots[dispatch.shard_id]
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        attempt_deadline = (
            None if attempt_timeout is None else started + attempt_timeout
        )
        lanes = [dispatch]
        recovered = False
        redispatched = False
        hedged = False
        last_error: Optional[ShardUnavailableError] = None
        while True:
            for lane in list(lanes):
                try:
                    response = lane.client.poll(lane.handle)
                except ShardUnavailableError as error:
                    if not getattr(error, "worker_dead", False):
                        # The worker *answered* with an error — an
                        # application failure, not a transport death.
                        # Propagate it unchanged rather than cycling a
                        # healthy worker over a bad request.
                        for other in lanes:
                            if other is not lane:
                                other.client.cancel(other.handle)
                        raise
                    lanes.remove(lane)
                    last_error = error
                    continue
                if response is not None:
                    for other in lanes:
                        if other is not lane:
                            other.client.cancel(other.handle)
                    if hedged and lane is not dispatch:
                        self._metrics().counter(
                            "shard.supervisor.hedge_wins"
                        ).inc()
                        recovered = True
                    slot.latencies.append(time.monotonic() - started)
                    return response, recovered
            now = time.monotonic()
            if not lanes:
                # Every lane died mid-flight: one bounded redispatch on
                # a recovered worker.
                assert last_error is not None
                if redispatched:
                    raise last_error
                self.report_failure(dispatch.shard_id, str(last_error))
                lane = self._redispatch(slot, dispatch.request,
                                        deadline, last_error)
                lanes = [lane]
                redispatched = True
                recovered = True
                if attempt_timeout is not None:
                    attempt_deadline = time.monotonic() + attempt_timeout
                continue
            if attempt_deadline is not None and now >= attempt_deadline:
                # The worker is alive but has not answered: treat it as
                # hung.  Retrying on the same worker would queue behind
                # the hang, so trip the breaker (terminating the
                # worker), then redispatch once on its replacement.
                timeout_error = ShardUnavailableError(
                    dispatch.shard_id,
                    f"no response within {attempt_timeout:.3g}s",
                )
                for lane in lanes:
                    lane.client.cancel(lane.handle)
                if redispatched:
                    self._metrics().counter(
                        "shard.supervisor.retry_timeouts"
                    ).inc()
                    raise timeout_error
                self._trip(slot, str(timeout_error), kill=True)
                lane = self._redispatch(slot, dispatch.request,
                                        deadline, timeout_error)
                lanes = [lane]
                redispatched = True
                recovered = True
                attempt_deadline = time.monotonic() + attempt_timeout
                continue
            if deadline is not None and now >= deadline:
                for lane in lanes:
                    lane.client.cancel(lane.handle)
                self._suspect(
                    slot, f"no response within {timeout:.3g}s"
                )
                raise ShardUnavailableError(
                    dispatch.shard_id,
                    f"no response within {timeout:.3g}s",
                )
            if (
                hedge_after is not None
                and not hedged
                and not redispatched
                and self.mode == "process"
                and now - started >= hedge_after
            ):
                hedged = True  # one hedge per dispatch, even if it fails
                extra = self._hedge(slot, dispatch.request)
                if extra is not None:
                    lanes.append(extra)
            # Block on the primary lane's event so responses wake us
            # immediately; the short cap keeps death detection fresh.
            lanes[0].client.wait_event(lanes[0].handle, 0.02)

    def report_failure(self, shard_id: int, reason: str) -> None:
        """Gateway-side failure report: trips the breaker and kicks the
        monitor so the respawn starts now, not on the next sweep."""
        self._trip(self._slots[shard_id], reason)

    # ------------------------------------------------------------------
    # Redispatch / hedging internals
    # ------------------------------------------------------------------
    def _redispatch(self, slot, request, deadline, cause):
        """Wait for the shard to come back, then resubmit one request."""
        try:
            fault_point("supervisor.redispatch")
        except InjectedFault:
            raise cause
        if not self._await_healthy(slot, deadline):
            raise cause
        with slot.lock:
            client = slot.client
        try:
            handle = client.submit(request)
        except ShardUnavailableError:
            raise cause
        self._metrics().counter("shard.supervisor.redispatched").inc()
        return _Dispatch(slot.shard_id, client, handle, request)

    def _await_healthy(self, slot, deadline) -> bool:
        self._kick.set()
        while True:
            with slot.lock:
                state = slot.state
            if state == SHARD_HEALTHY:
                return True
            if state == SHARD_PARKED:
                return False
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            slot.healthy.wait(
                0.02 if remaining is None else min(0.02, remaining)
            )

    def _hedge(self, slot, request) -> Optional[_Dispatch]:
        """Open a second lane for a straggling sub-query.

        Promotes a warm standby to be the shard's *new* primary client
        and duplicates the sub-query there; the old client keeps
        running as a retired lane so whichever copy answers first wins
        (the lb merge is idempotent, so duplicated work is
        answer-safe).  Subsequent queries go straight to the fresh
        client.  Returns ``None`` when no standby is ready — a hedge is
        an optimisation, never a queue."""
        with slot.lock:
            if slot.state not in (SHARD_HEALTHY, SHARD_SUSPECT):
                return None
            old = slot.client
        standby = self._take_standby(warm_only=True)
        if standby is None:
            self._metrics().counter(
                "shard.supervisor.hedge_unavailable"
            ).inc()
            return None
        try:
            fault_point("supervisor.hedge")
            client = ProcessShardClient(slot.payload, standby=standby)
            client.wait_ready(timeout=self.policy.ready_timeout_seconds)
        except (ShardUnavailableError, InjectedFault):
            return None
        with slot.lock:
            if slot.client is old:
                slot.client = client
                slot.retired.append(old)
            else:
                # Lost a swap race (concurrent hedge or respawn); let
                # the reaper retire our freshly-built client instead.
                slot.retired.append(client)
        self._metrics().counter("shard.supervisor.hedges").inc()
        try:
            handle = client.submit(request)
        except ShardUnavailableError:
            return None
        return _Dispatch(slot.shard_id, client, handle, request)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _trip(self, slot, reason: str, kill: bool = False) -> None:
        """healthy/suspect/half-open → open-circuit."""
        with slot.lock:
            if slot.state in (SHARD_OPEN, SHARD_PARKED):
                return
            client = slot.client
            slot.state = SHARD_OPEN
            slot.state_reason = reason
            slot.healthy.clear()
            slot.next_attempt_at = 0.0  # first respawn attempt immediate
            slot.probe_handle = None
            slot.ping_handle = None
        self._metrics().counter("shard.supervisor.trips").inc()
        if kill:
            self._close_async(client)
        self._kick.set()

    def _suspect(self, slot, reason: str) -> None:
        with slot.lock:
            if slot.state != SHARD_HEALTHY:
                return
            slot.state = SHARD_SUSPECT
            slot.state_reason = reason
            slot.healthy.clear()
        self._metrics().counter("shard.supervisor.suspects").inc()

    def _clear_suspect(self, slot) -> None:
        with slot.lock:
            if slot.state != SHARD_SUSPECT:
                return
            slot.state = SHARD_HEALTHY
            slot.state_reason = None
            slot.healthy.set()

    def _park(self, slot, reason: str) -> None:
        with slot.lock:
            client = slot.client
            slot.state = SHARD_PARKED
            slot.state_reason = reason
            slot.healthy.clear()
        self._metrics().counter("shard.supervisor.parked").inc()
        self._close_async(client)

    # ------------------------------------------------------------------
    # Monitor loop
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._kick.wait(timeout=self.policy.ping_interval_seconds)
            self._kick.clear()
            if self._stop.is_set():
                return
            for slot in self._slots:
                try:
                    self._sweep(slot)
                except Exception:  # pragma: no cover - monitor survives
                    pass
            self._reap_retired()
            self._replenish_standbys()

    def _sweep(self, slot) -> None:
        policy = self.policy
        with slot.lock:
            state, client = slot.state, slot.client
        if state == SHARD_PARKED:
            return
        now = time.monotonic()
        if state in (SHARD_HEALTHY, SHARD_SUSPECT):
            if not client.is_alive():
                self._trip(slot, "worker process died")
                self._respawn_if_due(slot)
                return
            depth = getattr(client, "queue_depth", 0)
            self._metrics().gauge(
                f"shard.supervisor.{slot.shard_id}.queue_depth"
            ).set(depth)
            if depth > policy.queue_depth_watermark:
                self._suspect(
                    slot,
                    f"queue depth {depth} above watermark "
                    f"{policy.queue_depth_watermark}",
                )
            if slot.ping_handle is None:
                try:
                    slot.ping_handle = client.submit_control("ping")
                    slot.ping_sent_at = now
                except ShardUnavailableError as error:
                    self._trip(slot, f"ping submit failed: {error}")
                    self._respawn_if_due(slot)
                return
            try:
                answer = client.poll(slot.ping_handle)
            except ShardUnavailableError as error:
                slot.ping_handle = None
                self._trip(slot, f"ping failed: {error}")
                self._respawn_if_due(slot)
                return
            if answer is not None:
                slot.ping_handle = None
                depth = getattr(client, "queue_depth", 0)
                if depth <= policy.queue_depth_watermark:
                    self._clear_suspect(slot)
            elif now - slot.ping_sent_at > policy.ping_timeout_seconds:
                # Alive but not draining its queue: slow, not dead.
                self._suspect(
                    slot,
                    f"ping unanswered for "
                    f"{now - slot.ping_sent_at:.1f}s",
                )
            return
        if state == SHARD_OPEN:
            self._respawn_if_due(slot)
            return
        if state == SHARD_HALF_OPEN:
            self._check_probe(slot)

    def _respawn_if_due(self, slot) -> None:
        with slot.lock:
            if slot.state != SHARD_OPEN:
                return
            if time.monotonic() < slot.next_attempt_at:
                return
        self._respawn(slot)

    def _respawn(self, slot) -> None:
        policy = self.policy
        now = time.monotonic()
        slot.respawn_times.append(now)
        while (slot.respawn_times
               and now - slot.respawn_times[0] > policy.crash_window_seconds):
            slot.respawn_times.popleft()
        if len(slot.respawn_times) > policy.max_respawns:
            self._park(
                slot,
                f"crash-loop budget exhausted ({policy.max_respawns} "
                f"respawn attempts in {policy.crash_window_seconds:.0f}s); "
                f"last error: {slot.state_reason}",
            )
            return
        self._metrics().counter("shard.supervisor.respawns").inc()
        with slot.lock:
            old = slot.client
        # Tear the old client down off the respawn path: joining its
        # receiver thread costs up to its poll interval, which would
        # dominate the respawn latency budget.
        self._close_async(old)
        try:
            fault_point("supervisor.respawn")
            if self.mode == "process":
                standby = self._take_standby()
                client = ProcessShardClient(slot.payload, standby=standby)
                client.wait_ready(timeout=policy.ready_timeout_seconds)
            else:
                client = InlineShardClient(slot.payload)
        except Exception as error:  # noqa: BLE001 - any failure backs off
            self._respawn_failed(slot, f"respawn failed: {error}")
            return
        with slot.lock:
            slot.client = client
            slot.state = SHARD_HALF_OPEN
            slot.state_reason = "probing respawned worker"
        # Half-open probe: the worker must answer one queue round-trip
        # before taking traffic again.
        try:
            fault_point("supervisor.probe")
            slot.probe_handle = client.submit_control("ping")
            slot.probe_sent_at = time.monotonic()
        except Exception as error:  # noqa: BLE001 - probe must not leak
            self._trip(slot, f"probe failed: {error}", kill=True)
            self._respawn_failed(slot, f"probe failed: {error}")
            return
        # Give the probe one short synchronous chance so a healthy
        # respawn completes within the same sweep (latency matters:
        # redispatched requests are waiting on it).
        client.wait_event(
            slot.probe_handle, min(policy.ping_timeout_seconds, 1.0)
        )
        self._check_probe(slot)

    def _respawn_failed(self, slot, reason: str) -> None:
        slot.failed_attempts += 1
        delay = min(
            self.policy.backoff_base_seconds * (2 ** (slot.failed_attempts - 1)),
            self.policy.backoff_max_seconds,
        )
        jitter = 1.0 + self.policy.backoff_jitter * self._rng.uniform(-1, 1)
        with slot.lock:
            if slot.state == SHARD_PARKED:
                return
            slot.state = SHARD_OPEN
            slot.state_reason = reason
            slot.next_attempt_at = time.monotonic() + delay * jitter
        self._metrics().counter("shard.supervisor.respawn_failures").inc()

    def _check_probe(self, slot) -> None:
        with slot.lock:
            if slot.state != SHARD_HALF_OPEN:
                return
            client = slot.client
            handle = slot.probe_handle
        try:
            answer = client.poll(handle)
        except ShardUnavailableError as error:
            self._trip(slot, f"probe failed: {error}", kill=True)
            self._respawn_failed(slot, f"probe failed: {error}")
            return
        if answer is not None:
            with slot.lock:
                slot.state = SHARD_HEALTHY
                slot.state_reason = None
                slot.probe_handle = None
                slot.failed_attempts = 0
                slot.respawns += 1
                slot.healthy.set()
            self._metrics().counter("shard.supervisor.recoveries").inc()
            if (self.policy.cache_index
                    and "tree_json" not in slot.payload):
                self._cache_index_async(slot)
        elif (time.monotonic() - slot.probe_sent_at
              > self.policy.ping_timeout_seconds):
            self._trip(slot, "probe timed out", kill=True)
            self._respawn_failed(slot, "probe timed out")

    # ------------------------------------------------------------------
    # Standbys, retirement, index caching
    # ------------------------------------------------------------------
    @staticmethod
    def _close_async(client) -> None:
        """Close a (usually already dead) client off the hot path."""

        def close() -> None:
            try:
                client.close(join_timeout=2.0)
            except Exception:  # pragma: no cover - best effort
                pass

        threading.Thread(
            target=close, name="repro-shard-supervisor-close", daemon=True
        ).start()

    def _take_standby(self, warm_only: bool = False) -> Optional[WarmStandby]:
        """Pop a standby, preferring one whose interpreter has finished
        booting.  With ``warm_only`` (the hedging path) a cold standby
        is left in the pool: a hedge that blocks behind a worker boot
        would be slower than the straggler it is racing, whereas a
        respawn adopts cold happily (the init message just queues
        behind the remaining boot)."""
        with self._standby_lock:
            alive = [s for s in self._standbys if s.is_alive()]
            dead = [s for s in self._standbys if not s.is_alive()]
            chosen = next((s for s in alive if s.is_warm()), None)
            if chosen is None and alive and not warm_only:
                chosen = alive[0]
            if chosen is not None:
                alive.remove(chosen)
            self._standbys = alive
        for standby in dead:
            standby.close()
        return chosen

    def _replenish_standbys(self) -> None:
        if self.mode != "process" or self._stop.is_set():
            return
        with self._standby_lock:
            self._standbys = [s for s in self._standbys if s.is_alive()]
            while len(self._standbys) < self.policy.standby_workers:
                self._standbys.append(WarmStandby())

    def _reap_retired(self) -> None:
        """Close demoted straggler clients once they finished draining
        (or died); their late answers were already cancelled or lost."""
        for slot in self._slots:
            with slot.lock:
                retired = list(slot.retired)
            for client in retired:
                if (getattr(client, "queue_depth", 0) == 0
                        or not client.is_alive()):
                    try:
                        client.close(join_timeout=0.2)
                    except Exception:  # pragma: no cover - best effort
                        pass
                    with slot.lock:
                        if client in slot.retired:
                            slot.retired.remove(client)

    def _prefetch_indexes(self) -> None:
        """Cache each worker's serialized RQ-tree into its payload so
        the first respawn already skips the index build."""
        for slot in self._slots:
            if self._stop.is_set():
                return
            if "tree_json" in slot.payload:
                continue
            with slot.lock:
                client = slot.client
            try:
                slot.payload["tree_json"] = client.fetch_index(
                    timeout=self.policy.ready_timeout_seconds
                )
            except ShardUnavailableError:
                continue  # the post-respawn hook retries the fetch

    def _cache_index_async(self, slot) -> None:
        def fetch() -> None:
            with slot.lock:
                client = slot.client
            try:
                slot.payload["tree_json"] = client.fetch_index(
                    timeout=self.policy.ready_timeout_seconds
                )
            except ShardUnavailableError:
                pass

        threading.Thread(
            target=fetch,
            name=f"repro-shard-supervisor-index-{slot.shard_id}",
            daemon=True,
        ).start()

    @staticmethod
    def _metrics():
        from ..service.metrics import get_registry

        return get_registry()
