"""Shard worker transport: spawn-based processes and the inline stand-in.

``mode="process"`` runs each :class:`~repro.shard.runtime.ShardRuntime`
in its own ``multiprocessing`` worker using the **spawn** start method —
the only one that is safe here, because the gateway process holds
threads (the serving layer's worker pool) and locks (graph CSR caches)
that a fork would duplicate mid-state.  Spawn re-imports the library in
a fresh interpreter, so everything a worker needs travels in a picklable
payload (:func:`~repro.shard.runtime.build_shard_payload`) and the loop
function must be importable at module top level.

The wire protocol is deliberately tiny: requests are
``("query" | "ping" | "index" | "update", request_id, arg)``,
``("init", -1, payload)`` (warm-standby activation, see
:class:`WarmStandby`) or ``("stop",)``; responses are
``("ready" | "result" | "error" | "fatal", request_id, value)``.  The
client side (:class:`ProcessShardClient`) tags every call with a fresh
id and a background receiver thread routes responses to per-call
events, so many gateway threads can have sub-queries in flight on the
same shard at once (the worker answers them one at a time — each worker
is single-threaded by design, one CPU core per shard).  ``ping`` is the
supervisor's liveness probe (a queue round-trip, so it also proves the
worker loop is draining); ``index`` returns the worker's serialized
RQ-tree so a respawn can skip the index build entirely.

Failure surface: every transport problem — worker died, start-up
failed, response timed out, the runtime raised — becomes a
:class:`ShardUnavailableError`, which the gateway converts into a
*degraded* (never wrong) answer.  :class:`InlineShardClient` presents
the identical interface around an in-process runtime; it exists for
tests (fault plans are process-global, so injection only reaches inline
runtimes), debugging, and platforms where spawning is unwelcome.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Dict, Optional, Tuple

from ..errors import ShardUnavailableError
from . import shm
from .runtime import ShardRuntime

__all__ = [
    "InlineShardClient",
    "ProcessShardClient",
    "WarmStandby",
    "shard_worker_main",
]


def shard_worker_main(
    payload: Optional[Dict[str, object]],
    requests: "multiprocessing.Queue",
    responses: "multiprocessing.Queue",
) -> None:
    """Worker-process loop: build the runtime, then serve sub-queries.

    Must stay importable at module top level (the spawn start method
    imports this module in the child to find it).  All exceptions are
    reported over the response queue rather than raised — a worker that
    dies silently would stall the gateway.

    The receive loop polls with a short timeout and exits when the
    parent process is gone.  This matters for shared-memory hygiene: a
    ``SIGKILL``-ed gateway never runs its unlink hooks, and the
    resource tracker it shares with its workers only reaps leaked
    segments once *every* process holding the tracker pipe has exited
    — daemon children orphaned by a hard kill would otherwise pin
    ``/dev/shm`` entries forever (see :mod:`repro.shard.shm`).
    """
    parent = multiprocessing.parent_process()
    if payload is None:
        # Warm standby: the expensive part of a spawn — a fresh
        # interpreter plus the library import — is already paid.  Sit
        # idle until the supervisor activates us for whichever shard
        # needs a body, with the same orphan hygiene as the serve loop.
        # The "warm" marker tells the supervisor the boot cost is
        # actually behind us: a just-spawned standby is *alive* long
        # before it is cheap to adopt, and hedging only wants the
        # cheap kind.  (wait_ready and the receiver loop both ignore
        # the marker if it is still queued at adoption time.)
        responses.put(("warm", -1, None))
        while True:
            try:
                message = requests.get(timeout=1.0)
            except queue_module.Empty:
                if parent is not None and not parent.is_alive():
                    return
                continue
            if message[0] == "stop":
                return
            if message[0] == "init":
                payload = message[2]
                break
    try:
        runtime = ShardRuntime(payload)
    except BaseException as error:  # noqa: BLE001 - reported to parent
        responses.put(("fatal", -1, f"{type(error).__name__}: {error}"))
        shm.detach_all()
        return
    responses.put(("ready", -1, runtime.tree_height))
    try:
        while True:
            try:
                message = requests.get(timeout=1.0)
            except queue_module.Empty:
                if parent is not None and not parent.is_alive():
                    return  # orphaned: release the tracker pipe
                continue
            if message[0] == "stop":
                return
            kind, request_id, request = message
            if kind == "ping":
                responses.put(("result", request_id, {"pong": True}))
                continue
            try:
                if kind == "index":
                    responses.put(
                        ("result", request_id, runtime.index_json())
                    )
                elif kind == "update":
                    # Live-update slice: applied in place on this
                    # thread, so the ack doubles as the drain barrier —
                    # every sub-query admitted before it has already
                    # answered against the previous epoch's graph.
                    responses.put(
                        ("result", request_id, runtime.apply_updates(request))
                    )
                else:
                    responses.put(
                        ("result", request_id, runtime.handle(request))
                    )
            except BaseException as error:  # noqa: BLE001 - to parent
                responses.put(
                    ("error", request_id, f"{type(error).__name__}: {error}")
                )
    finally:
        runtime = None  # drop CSR views before closing their segment
        shm.detach_all()


class WarmStandby:
    """A pre-spawned, idle shard worker awaiting activation.

    Spawning a worker pays for a fresh interpreter plus the library
    import — hundreds of milliseconds that would dominate respawn
    latency.  A standby pays that cost ahead of time: its process sits
    in :func:`shard_worker_main` with no payload, and the supervisor
    activates it for whichever shard dies first by handing the payload
    over the already-open request queue (:class:`ProcessShardClient`
    adopts the process and queues via its ``standby=`` parameter).
    """

    def __init__(self) -> None:
        context = multiprocessing.get_context("spawn")
        self._requests = context.Queue()
        self._responses = context.Queue()
        self._process = context.Process(
            target=shard_worker_main,
            args=(None, self._requests, self._responses),
            name="repro-shard-standby",
            daemon=True,
        )
        self._process.start()
        self._taken = False
        self._warm = False

    def is_alive(self) -> bool:
        return not self._taken and self._process.is_alive()

    def is_warm(self) -> bool:
        """Whether the standby finished booting (interpreter + imports).

        A standby is cheap to adopt only once it has reached its wait
        loop and posted the ``warm`` marker; before that, adoption
        still works but blocks behind the remaining boot time.
        """
        if self._warm:
            return True
        if self._taken:
            return False
        try:
            while True:
                kind = self._responses.get_nowait()[0]
                if kind == "warm":
                    self._warm = True
        except queue_module.Empty:
            pass
        except (OSError, ValueError):  # pragma: no cover - torn down
            pass
        return self._warm

    def take(self):
        """Hand the (process, request queue, response queue) triple to an
        adopting client; the standby must not be reused afterwards."""
        self._taken = True
        return self._process, self._requests, self._responses

    def close(self, join_timeout: float = 5.0) -> None:
        if self._taken:
            return
        self._taken = True
        try:
            self._requests.put(("stop",))
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self._process.join(timeout=join_timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=join_timeout)
        for q in (self._requests, self._responses):
            q.close()
            q.cancel_join_thread()


class _PendingCall:
    """One in-flight sub-query awaiting its response."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None


class ProcessShardClient:
    """Gateway-side handle on one spawned shard worker.

    Construction starts the process; :meth:`wait_ready` blocks until the
    worker has built its index (the sharded engine starts all workers
    first and only then waits, so K index builds overlap).  ``submit`` /
    ``wait`` form an async pair so one gateway query can fan out to
    several shards concurrently.
    """

    def __init__(
        self,
        payload: Dict[str, object],
        standby: Optional[WarmStandby] = None,
    ) -> None:
        self.shard_id: int = payload["shard_id"]
        self.num_nodes: int = payload["num_nodes"]
        self.tree_height: int = 0
        if standby is not None:
            # Adopt a warm standby: the process is already imported and
            # waiting; activation is one queue message instead of a
            # spawn, which is what makes supervised respawn cheap.
            self._process, self._requests, self._responses = standby.take()
            self._requests.put(("init", -1, payload))
        else:
            context = multiprocessing.get_context("spawn")
            self._requests = context.Queue()
            self._responses = context.Queue()
            self._process = context.Process(
                target=shard_worker_main,
                args=(payload, self._requests, self._responses),
                name=f"repro-shard-{self.shard_id}",
                daemon=True,
            )
            self._process.start()
        self._ready = False
        self._closed = False
        self._lock = threading.Lock()
        self._next_id = 0
        self._pending: Dict[int, _PendingCall] = {}
        self._receiver: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Start-up
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 300.0) -> None:
        """Block until the worker reports its index is built."""
        if self._ready:
            return
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise ShardUnavailableError(
                    self.shard_id, f"worker not ready within {timeout:.0f}s"
                )
            try:
                kind, _, value = self._responses.get(
                    timeout=min(remaining, 0.25)
                )
            except queue_module.Empty:
                if not self._process.is_alive():
                    raise ShardUnavailableError(
                        self.shard_id, "worker process died during start-up"
                    )
                continue
            if kind == "fatal":
                self.close()
                raise ShardUnavailableError(
                    self.shard_id, f"index build failed: {value}"
                )
            if kind == "ready":
                self.tree_height = int(value)
                break
        self._ready = True
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-{self.shard_id}-recv",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        while not self._closed:
            try:
                kind, request_id, value = self._responses.get(timeout=0.25)
            except queue_module.Empty:
                continue
            except (OSError, ValueError, EOFError):
                return  # queue torn down during close()
            # Look up WITHOUT popping: the response may land before the
            # gateway thread reaches wait() for this handle (routine on
            # multi-shard scatter, where it waits on the shards one at a
            # time).  wait() owns the pop once the event fires.
            with self._lock:
                call = self._pending.get(request_id)
            if call is None:
                continue
            if kind == "result":
                call.result = value
            else:
                call.error = str(value)
            call.event.set()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> int:
        """Enqueue one sub-query; returns a handle for :meth:`wait`."""
        return self._submit("query", request)

    def submit_control(self, kind: str) -> int:
        """Enqueue a ``"ping"`` or ``"index"`` control message (async —
        the supervisor polls the handle so liveness checks never block
        its monitor loop behind a busy worker)."""
        return self._submit(kind, None)

    def ping(self, timeout: float = 5.0) -> bool:
        """Round-trip a no-op through the worker's queues.  Proves not
        just that the process is alive but that its serve loop drains."""
        self.wait(self.submit_control("ping"), timeout=timeout)
        return True

    def fetch_index(self, timeout: float = 300.0) -> Dict[str, object]:
        """The worker's serialized RQ-tree (for respawn caching)."""
        return self.wait(self.submit_control("index"), timeout=timeout)

    def apply_update(
        self, spec: Dict[str, object], timeout: float = 300.0
    ) -> Dict[str, object]:
        """Stream one epoch's update slice to the worker and block for
        its ack (see :meth:`ShardRuntime.apply_updates` — the ack is the
        old-epoch drain barrier)."""
        return self.wait(self._submit("update", spec), timeout=timeout)

    def is_alive(self) -> bool:
        return self._ready and not self._closed and self._process.is_alive()

    @property
    def queue_depth(self) -> int:
        """Calls currently in flight on this worker (watermark input)."""
        with self._lock:
            return len(self._pending)

    def _submit(self, kind: str, arg: object) -> int:
        if not self._ready or self._closed:
            raise ShardUnavailableError(self.shard_id, "client not running")
        call = _PendingCall()
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = call
        try:
            self._requests.put((kind, request_id, arg))
        except (OSError, ValueError) as error:
            with self._lock:
                self._pending.pop(request_id, None)
            raise ShardUnavailableError(
                self.shard_id, f"request queue closed: {error}"
            )
        return request_id

    def wait(
        self, handle: int, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Block for the response to a :meth:`submit` handle."""
        with self._lock:
            call = self._pending.get(handle)
        if call is None:
            raise ShardUnavailableError(
                self.shard_id, f"unknown request handle {handle}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        while not call.event.wait(0.05):
            if not self._process.is_alive() and not call.event.is_set():
                with self._lock:
                    self._pending.pop(handle, None)
                raise ShardUnavailableError(
                    self.shard_id, "worker process died", worker_dead=True
                )
            if deadline is not None and time.monotonic() >= deadline:
                with self._lock:
                    self._pending.pop(handle, None)
                raise ShardUnavailableError(
                    self.shard_id, f"no response within {timeout:.3g}s"
                )
        with self._lock:
            self._pending.pop(handle, None)
        if call.error is not None:
            raise ShardUnavailableError(
                self.shard_id, call.error,
                worker_dead=call.error == "client closed",
            )
        assert call.result is not None
        return call.result

    def poll(self, handle: int) -> Optional[Dict[str, object]]:
        """Non-blocking probe of a :meth:`submit` handle.

        Returns the response once it has arrived (consuming the
        handle), ``None`` while the call is still in flight on a live
        worker, and raises :class:`ShardUnavailableError` — also
        consuming the handle — when the worker answered with an error
        or died holding the call.  Unlike :meth:`wait`, polling never
        forfeits the handle on a timeout, so the supervisor can keep a
        call alive across respawn decisions and hedged duplicates.
        """
        with self._lock:
            call = self._pending.get(handle)
        if call is None:
            raise ShardUnavailableError(
                self.shard_id, f"unknown request handle {handle}"
            )
        if call.event.is_set():
            with self._lock:
                self._pending.pop(handle, None)
            if call.error is not None:
                raise ShardUnavailableError(
                    self.shard_id, call.error,
                    worker_dead=call.error == "client closed",
                )
            assert call.result is not None
            return call.result
        if not self._process.is_alive():
            with self._lock:
                self._pending.pop(handle, None)
            raise ShardUnavailableError(
                self.shard_id, "worker process died", worker_dead=True
            )
        return None

    def wait_event(self, handle: int, timeout: float) -> bool:
        """Block up to ``timeout`` for a handle's response event without
        consuming it (pair with :meth:`poll`)."""
        with self._lock:
            call = self._pending.get(handle)
        if call is None:
            return True
        return call.event.wait(timeout)

    def cancel(self, handle: int) -> None:
        """Forget an in-flight handle; its late response is dropped by
        the receiver (used for the losing lane of a hedged dispatch)."""
        with self._lock:
            self._pending.pop(handle, None)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the worker and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._requests.put(("stop",))
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self._process.join(timeout=join_timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=join_timeout)
        if self._receiver is not None:
            self._receiver.join(timeout=join_timeout)
        for q in (self._requests, self._responses):
            q.close()
            q.cancel_join_thread()
        # Fail any call still outstanding.
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            call.error = "client closed"
            call.event.set()


class InlineShardClient:
    """In-process drop-in for :class:`ProcessShardClient`.

    Runs the runtime synchronously on the calling thread.  ``submit``
    executes the sub-query eagerly and ``wait`` just unwraps, so the
    client satisfies the same submit/wait contract the gateway drives.
    Used by tests (process-global :class:`~repro.resilience.FaultPlan`
    injection can only reach in-process runtimes), by debugging
    sessions, and as a spawn-free fallback.
    """

    def __init__(self, payload: Dict[str, object]) -> None:
        self.shard_id: int = payload["shard_id"]
        self.num_nodes: int = payload["num_nodes"]
        self._runtime: Optional[ShardRuntime] = ShardRuntime(payload)
        self.tree_height = self._runtime.tree_height

    def wait_ready(self, timeout: float = 300.0) -> None:
        pass  # construction already built the index

    def submit(
        self, request: Dict[str, object]
    ) -> Tuple[str, object]:
        if self._runtime is None:
            return ("error", "ShardUnavailableError: client closed")
        try:
            return ("result", self._runtime.handle(request))
        except Exception as error:  # noqa: BLE001 - same surface as process
            return ("error", f"{type(error).__name__}: {error}")

    def wait(
        self,
        handle: Tuple[str, object],
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        kind, value = handle
        if kind == "error":
            raise ShardUnavailableError(
                self.shard_id, str(value),
                worker_dead="client closed" in str(value),
            )
        return value  # type: ignore[return-value]

    def submit_control(self, kind: str) -> Tuple[str, object]:
        if self._runtime is None:
            return ("error", "ShardUnavailableError: client closed")
        if kind == "ping":
            return ("result", {"pong": True})
        try:
            return ("result", self._runtime.index_json())
        except Exception as error:  # noqa: BLE001 - same surface
            return ("error", f"{type(error).__name__}: {error}")

    def ping(self, timeout: float = 5.0) -> bool:
        self.wait(self.submit_control("ping"), timeout=timeout)
        return True

    def fetch_index(self, timeout: float = 300.0) -> Dict[str, object]:
        return self.wait(self.submit_control("index"), timeout=timeout)

    def apply_update(
        self, spec: Dict[str, object], timeout: float = 300.0
    ) -> Dict[str, object]:
        if self._runtime is None:
            raise ShardUnavailableError(
                self.shard_id, "client closed", worker_dead=True
            )
        try:
            return self._runtime.apply_updates(spec)
        except Exception as error:  # noqa: BLE001 - same surface
            raise ShardUnavailableError(
                self.shard_id, f"{type(error).__name__}: {error}"
            )

    def is_alive(self) -> bool:
        return self._runtime is not None

    @property
    def queue_depth(self) -> int:
        return 0  # submit is synchronous: nothing is ever in flight

    def poll(
        self, handle: Tuple[str, object]
    ) -> Optional[Dict[str, object]]:
        return self.wait(handle)

    def wait_event(self, handle: Tuple[str, object], timeout: float) -> bool:
        return True  # the answer was computed at submit time

    def cancel(self, handle: Tuple[str, object]) -> None:
        pass

    def close(self, join_timeout: float = 5.0) -> None:
        # Drop the runtime so any shared-memory CSR views it holds die
        # before the engine releases (and unlinks) their segment.
        self._runtime = None
