"""Shard worker transport: spawn-based processes and the inline stand-in.

``mode="process"`` runs each :class:`~repro.shard.runtime.ShardRuntime`
in its own ``multiprocessing`` worker using the **spawn** start method —
the only one that is safe here, because the gateway process holds
threads (the serving layer's worker pool) and locks (graph CSR caches)
that a fork would duplicate mid-state.  Spawn re-imports the library in
a fresh interpreter, so everything a worker needs travels in a picklable
payload (:func:`~repro.shard.runtime.build_shard_payload`) and the loop
function must be importable at module top level.

The wire protocol is deliberately tiny: requests are
``("query", request_id, request_dict)`` or ``("stop",)``, responses are
``("ready" | "result" | "error" | "fatal", request_id, value)``.  The
client side (:class:`ProcessShardClient`) tags every call with a fresh
id and a background receiver thread routes responses to per-call
events, so many gateway threads can have sub-queries in flight on the
same shard at once (the worker answers them one at a time — each worker
is single-threaded by design, one CPU core per shard).

Failure surface: every transport problem — worker died, start-up
failed, response timed out, the runtime raised — becomes a
:class:`ShardUnavailableError`, which the gateway converts into a
*degraded* (never wrong) answer.  :class:`InlineShardClient` presents
the identical interface around an in-process runtime; it exists for
tests (fault plans are process-global, so injection only reaches inline
runtimes), debugging, and platforms where spawning is unwelcome.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Dict, Optional, Tuple

from ..errors import ShardUnavailableError
from . import shm
from .runtime import ShardRuntime

__all__ = [
    "InlineShardClient",
    "ProcessShardClient",
    "shard_worker_main",
]


def shard_worker_main(
    payload: Dict[str, object],
    requests: "multiprocessing.Queue",
    responses: "multiprocessing.Queue",
) -> None:
    """Worker-process loop: build the runtime, then serve sub-queries.

    Must stay importable at module top level (the spawn start method
    imports this module in the child to find it).  All exceptions are
    reported over the response queue rather than raised — a worker that
    dies silently would stall the gateway.

    The receive loop polls with a short timeout and exits when the
    parent process is gone.  This matters for shared-memory hygiene: a
    ``SIGKILL``-ed gateway never runs its unlink hooks, and the
    resource tracker it shares with its workers only reaps leaked
    segments once *every* process holding the tracker pipe has exited
    — daemon children orphaned by a hard kill would otherwise pin
    ``/dev/shm`` entries forever (see :mod:`repro.shard.shm`).
    """
    parent = multiprocessing.parent_process()
    try:
        runtime = ShardRuntime(payload)
    except BaseException as error:  # noqa: BLE001 - reported to parent
        responses.put(("fatal", -1, f"{type(error).__name__}: {error}"))
        shm.detach_all()
        return
    responses.put(("ready", -1, runtime.tree_height))
    try:
        while True:
            try:
                message = requests.get(timeout=1.0)
            except queue_module.Empty:
                if parent is not None and not parent.is_alive():
                    return  # orphaned: release the tracker pipe
                continue
            if message[0] == "stop":
                return
            _, request_id, request = message
            try:
                responses.put(
                    ("result", request_id, runtime.handle(request))
                )
            except BaseException as error:  # noqa: BLE001 - to parent
                responses.put(
                    ("error", request_id, f"{type(error).__name__}: {error}")
                )
    finally:
        runtime = None  # drop CSR views before closing their segment
        shm.detach_all()


class _PendingCall:
    """One in-flight sub-query awaiting its response."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None


class ProcessShardClient:
    """Gateway-side handle on one spawned shard worker.

    Construction starts the process; :meth:`wait_ready` blocks until the
    worker has built its index (the sharded engine starts all workers
    first and only then waits, so K index builds overlap).  ``submit`` /
    ``wait`` form an async pair so one gateway query can fan out to
    several shards concurrently.
    """

    def __init__(self, payload: Dict[str, object]) -> None:
        context = multiprocessing.get_context("spawn")
        self.shard_id: int = payload["shard_id"]
        self.num_nodes: int = payload["num_nodes"]
        self.tree_height: int = 0
        self._requests = context.Queue()
        self._responses = context.Queue()
        self._process = context.Process(
            target=shard_worker_main,
            args=(payload, self._requests, self._responses),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._process.start()
        self._ready = False
        self._closed = False
        self._lock = threading.Lock()
        self._next_id = 0
        self._pending: Dict[int, _PendingCall] = {}
        self._receiver: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Start-up
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 300.0) -> None:
        """Block until the worker reports its index is built."""
        if self._ready:
            return
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise ShardUnavailableError(
                    self.shard_id, f"worker not ready within {timeout:.0f}s"
                )
            try:
                kind, _, value = self._responses.get(
                    timeout=min(remaining, 0.25)
                )
            except queue_module.Empty:
                if not self._process.is_alive():
                    raise ShardUnavailableError(
                        self.shard_id, "worker process died during start-up"
                    )
                continue
            if kind == "fatal":
                self.close()
                raise ShardUnavailableError(
                    self.shard_id, f"index build failed: {value}"
                )
            if kind == "ready":
                self.tree_height = int(value)
                break
        self._ready = True
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-{self.shard_id}-recv",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        while not self._closed:
            try:
                kind, request_id, value = self._responses.get(timeout=0.25)
            except queue_module.Empty:
                continue
            except (OSError, ValueError, EOFError):
                return  # queue torn down during close()
            # Look up WITHOUT popping: the response may land before the
            # gateway thread reaches wait() for this handle (routine on
            # multi-shard scatter, where it waits on the shards one at a
            # time).  wait() owns the pop once the event fires.
            with self._lock:
                call = self._pending.get(request_id)
            if call is None:
                continue
            if kind == "result":
                call.result = value
            else:
                call.error = str(value)
            call.event.set()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> int:
        """Enqueue one sub-query; returns a handle for :meth:`wait`."""
        if not self._ready or self._closed:
            raise ShardUnavailableError(self.shard_id, "client not running")
        call = _PendingCall()
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = call
        try:
            self._requests.put(("query", request_id, request))
        except (OSError, ValueError) as error:
            with self._lock:
                self._pending.pop(request_id, None)
            raise ShardUnavailableError(
                self.shard_id, f"request queue closed: {error}"
            )
        return request_id

    def wait(
        self, handle: int, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Block for the response to a :meth:`submit` handle."""
        with self._lock:
            call = self._pending.get(handle)
        if call is None:
            raise ShardUnavailableError(
                self.shard_id, f"unknown request handle {handle}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        while not call.event.wait(0.05):
            if not self._process.is_alive() and not call.event.is_set():
                with self._lock:
                    self._pending.pop(handle, None)
                raise ShardUnavailableError(
                    self.shard_id, "worker process died"
                )
            if deadline is not None and time.monotonic() >= deadline:
                with self._lock:
                    self._pending.pop(handle, None)
                raise ShardUnavailableError(
                    self.shard_id, f"no response within {timeout:.3g}s"
                )
        with self._lock:
            self._pending.pop(handle, None)
        if call.error is not None:
            raise ShardUnavailableError(self.shard_id, call.error)
        assert call.result is not None
        return call.result

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the worker and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._requests.put(("stop",))
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self._process.join(timeout=join_timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=join_timeout)
        if self._receiver is not None:
            self._receiver.join(timeout=join_timeout)
        for q in (self._requests, self._responses):
            q.close()
            q.cancel_join_thread()
        # Fail any call still outstanding.
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            call.error = "client closed"
            call.event.set()


class InlineShardClient:
    """In-process drop-in for :class:`ProcessShardClient`.

    Runs the runtime synchronously on the calling thread.  ``submit``
    executes the sub-query eagerly and ``wait`` just unwraps, so the
    client satisfies the same submit/wait contract the gateway drives.
    Used by tests (process-global :class:`~repro.resilience.FaultPlan`
    injection can only reach in-process runtimes), by debugging
    sessions, and as a spawn-free fallback.
    """

    def __init__(self, payload: Dict[str, object]) -> None:
        self.shard_id: int = payload["shard_id"]
        self.num_nodes: int = payload["num_nodes"]
        self._runtime: Optional[ShardRuntime] = ShardRuntime(payload)
        self.tree_height = self._runtime.tree_height

    def wait_ready(self, timeout: float = 300.0) -> None:
        pass  # construction already built the index

    def submit(
        self, request: Dict[str, object]
    ) -> Tuple[str, object]:
        if self._runtime is None:
            return ("error", "ShardUnavailableError: client closed")
        try:
            return ("result", self._runtime.handle(request))
        except Exception as error:  # noqa: BLE001 - same surface as process
            return ("error", f"{type(error).__name__}: {error}")

    def wait(
        self,
        handle: Tuple[str, object],
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        kind, value = handle
        if kind == "error":
            raise ShardUnavailableError(self.shard_id, str(value))
        return value  # type: ignore[return-value]

    def close(self, join_timeout: float = 5.0) -> None:
        # Drop the runtime so any shared-memory CSR views it holds die
        # before the engine releases (and unlinks) their segment.
        self._runtime = None
