"""Shared-memory CSR segments: the zero-copy shard payload transport.

``transport="pickle"`` ships each shard its subgraph as a pickled arc
list — fine for construction, but the bytes are copied at least three
times (pickle, pipe, unpickle) and land as Python objects.  The shm
transport instead publishes the shard subgraph's CSR snapshot
(:class:`repro.accel.csr.CSRGraph`) into one
``multiprocessing.shared_memory`` segment per shard at spawn time;
workers map the arrays **read-only, zero-copy** (numpy views over the
segment buffer) and the pickled payload shrinks to a few scalars plus
the segment's field table.  Per-query messages were already scalars and
node-id lists; with the graph bytes out of the pipe, they are all that
remains on the wire.

Segment layout
--------------
One segment holds every array of one CSR snapshot, concatenated with
64-byte alignment: ``indptr`` / ``indices`` / ``probs`` (+ ``_f32``)
forward and reverse, plus the shard's ``global_ids`` relabelling
vector.  The field table (name → dtype, shape, byte offset) travels in
the payload next to the segment name; both sides derive their views
from it, so layout changes cannot desynchronize silently.

Lifecycle and crash-safety
--------------------------
The **creator** (the gateway process building a sharded engine) owns
every segment through the module-level :class:`SegmentRegistry`:
refcounted ``publish`` / ``retain`` / ``release``, with the last
release closing *and unlinking* the segment.  An ``atexit`` hook
unlinks anything still registered at interpreter shutdown, so a clean
but untidy exit leaks nothing.

For unclean exits the CPython ``resource_tracker`` is the backstop —
and its semantics on this interpreter shape the protocol:

* Creating **and attaching** a ``SharedMemory`` both register the name
  with the resource tracker (a separate watchdog process).
* Spawned shard workers inherit the creator's tracker, so their attach
  registrations dedupe into the same cache entry.  **Nobody manually
  unregisters**: a worker unregistering would strip the creator's
  crash insurance, and a clean ``unlink()`` unregisters by itself.
* The tracker unlinks leftover segments only once *every* process
  sharing it has exited.  Daemon workers outlive a ``SIGKILL``-ed
  gateway (the atexit reaper never ran), so the worker loop watches
  ``multiprocessing.parent_process().is_alive()`` and exits when
  orphaned — at which point the tracker reaps every segment.  A
  ``SIGKILL``-ed *worker* releases nothing: the creator still owns the
  segment and unlinks it on ``close()``.

Attached segments are tracked per-process and released best-effort via
:func:`detach_all`; a worker that dies abruptly merely unmaps.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - POSIX-only stdlib module
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None  # type: ignore[assignment]

from ..accel.csr import CSRGraph

__all__ = [
    "SegmentRegistry",
    "attach_csr",
    "detach",
    "detach_all",
    "publish_csr",
    "registry",
    "shm_available",
]

#: Byte alignment of every field inside a segment: one cache line, and
#: a multiple of every element size we store (int64/float64/float32).
_ALIGN = 64

#: The CSRGraph arrays a segment carries, in layout order.
_CSR_FIELDS = (
    "indptr",
    "indices",
    "probs",
    "probs_f32",
    "rev_indptr",
    "rev_indices",
    "rev_probs",
    "rev_probs_f32",
)


def shm_available() -> bool:
    """Whether the shared-memory transport can run in this environment."""
    return np is not None and _shared_memory is not None


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SegmentRegistry:
    """Creator-side table of published segments with refcounted unlink.

    ``publish`` allocates a segment, copies the arrays in, and records
    it with refcount 1.  ``retain`` / ``release`` adjust the count; the
    release that reaches zero closes and **unlinks** the segment (the
    attach side never unlinks).  ``shutdown`` — registered via
    ``atexit`` on first publish — force-unlinks anything left, so
    leaked engine handles cannot leak kernel objects past process
    exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: Dict[str, object] = {}
        self._refs: Dict[str, int] = {}
        self._atexit_installed = False

    def publish(self, arrays: Dict[str, "np.ndarray"]) -> Dict[str, object]:
        """Copy *arrays* into a fresh segment; returns the attach meta.

        The meta dict is small and picklable: segment ``name``,
        ``nbytes``, and a ``fields`` table of dtype/shape/offset per
        array.  The new segment starts with refcount 1, owned by the
        caller.
        """
        if not shm_available():
            raise RuntimeError(
                "multiprocessing.shared_memory (and numpy) are required "
                "for the shm transport; use transport='pickle'"
            )
        fields: Dict[str, Dict[str, object]] = {}
        offset = 0
        for name, array in arrays.items():
            offset = _aligned(offset)
            fields[name] = {
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": offset,
            }
            offset += array.nbytes
        total = max(offset, 1)  # zero-byte segments are invalid
        segment = _shared_memory.SharedMemory(create=True, size=total)
        for name, array in arrays.items():
            spec = fields[name]
            flat = np.frombuffer(
                segment.buf,
                dtype=array.dtype,
                count=array.size,
                offset=spec["offset"],
            )
            flat[:] = array.ravel()
        with self._lock:
            self._segments[segment.name] = segment
            self._refs[segment.name] = 1
            if not self._atexit_installed:
                atexit.register(self.shutdown)
                self._atexit_installed = True
        return {
            "name": segment.name,
            "nbytes": total,
            "fields": fields,
        }

    def owns(self, name: str) -> bool:
        """Whether this process created (and still holds) *name*."""
        with self._lock:
            return name in self._segments

    def refcount(self, name: str) -> int:
        with self._lock:
            return self._refs.get(name, 0)

    def retain(self, name: str) -> None:
        """Add one owner to a published segment."""
        with self._lock:
            if name not in self._refs:
                raise KeyError(f"unknown shared-memory segment {name!r}")
            self._refs[name] += 1

    def release(self, name: str) -> bool:
        """Drop one owner; unlink on the last release.  Idempotent for
        already-released names (returns ``False``)."""
        with self._lock:
            if name not in self._refs:
                return False
            self._refs[name] -= 1
            if self._refs[name] > 0:
                return False
            segment = self._segments.pop(name)
            del self._refs[name]
        self._destroy(segment)
        return True

    def active(self) -> List[str]:
        """Names of the segments this process currently owns."""
        with self._lock:
            return sorted(self._segments)

    def shutdown(self) -> None:
        """Unlink every remaining segment (atexit backstop)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._refs.clear()
        for segment in segments:
            self._destroy(segment)

    @staticmethod
    def _destroy(segment: object) -> None:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            segment.close()
        except BufferError:
            # Live numpy views still export the mapping (e.g. an
            # inline-mode runtime the caller kept a reference to).
            # Disarm the handle so its destructor doesn't retry and
            # spam shutdown; the mapping itself is released when the
            # last view dies, or at process exit.
            segment._buf = None
            segment._mmap = None
            fd = getattr(segment, "_fd", -1)
            if fd >= 0:  # pragma: no branch - POSIX only
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass
                segment._fd = -1


#: The process-wide creator-side registry.
registry = SegmentRegistry()

#: Attach-side handles, kept alive while numpy views reference them.
_attached: Dict[str, object] = {}
_attached_lock = threading.Lock()


def publish_csr(
    csr: CSRGraph, global_ids: List[int]
) -> Dict[str, object]:
    """Publish one shard's CSR snapshot (+ id relabelling) as a segment.

    Returns the picklable meta the worker passes to :func:`attach_csr`;
    carries ``num_nodes`` / ``num_arcs`` so the attach side can rebuild
    a :class:`CSRGraph` without touching the graph object.
    """
    arrays = {name: getattr(csr, name) for name in _CSR_FIELDS}
    arrays["global_ids"] = np.asarray(global_ids, dtype=np.int64)
    meta = registry.publish(arrays)
    meta["num_nodes"] = csr.num_nodes
    meta["num_arcs"] = csr.num_arcs
    return meta


def attach_csr(
    meta: Dict[str, object]
) -> Tuple[Dict[str, "np.ndarray"], "np.ndarray"]:
    """Map a published segment; returns ``(csr_arrays, global_ids)``.

    Every array is a read-only numpy view over the segment buffer — no
    copy.  The underlying handle is cached in a per-process table so
    the views stay valid for the process lifetime (or until
    :func:`detach_all`).  Attaching a segment this process itself
    published reuses the registry's handle rather than double-mapping.
    """
    if not shm_available():
        raise RuntimeError(
            "multiprocessing.shared_memory (and numpy) are required "
            "to attach a shm payload"
        )
    name = meta["name"]
    with _attached_lock:
        segment = _attached.get(name)
        if segment is None:
            if registry.owns(name):
                segment = registry._segments[name]
            else:
                segment = _shared_memory.SharedMemory(name=name)
                _attached[name] = segment
    views: Dict[str, "np.ndarray"] = {}
    for field, spec in meta["fields"].items():
        count = 1
        for dim in spec["shape"]:
            count *= dim
        view = np.frombuffer(
            segment.buf,
            dtype=np.dtype(spec["dtype"]),
            count=count,
            offset=spec["offset"],
        ).reshape(spec["shape"])
        view.setflags(write=False)
        views[field] = view
    global_ids = views.pop("global_ids")
    return views, global_ids


def detach(name: str) -> bool:
    """Close one attached segment (live-update hot swap).

    When a worker swaps to a new epoch's segment, the superseded
    mapping is closed here so the worker's address space doesn't
    accumulate one mapping per epoch.  Never unlinks (creator-only),
    and is a no-op (``False``) for names this process published itself
    or never attached.  A ``BufferError`` from still-referenced views
    is swallowed exactly as in :func:`detach_all`.
    """
    with _attached_lock:
        segment = _attached.pop(name, None)
    if segment is None:
        return False
    try:
        segment.close()
    except BufferError:  # pragma: no cover - views still referenced
        pass
    return True


def detach_all() -> None:
    """Close every attached (not owned) segment, best effort.

    Never unlinks — only the creator does that.  A ``BufferError``
    (live numpy views still exported) is swallowed: the process is on
    its way out and exit unmaps regardless; this call exists to keep
    tidy shutdowns warning-free.
    """
    with _attached_lock:
        segments = list(_attached.values())
        _attached.clear()
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views still referenced
            pass
