"""ShardedRQTreeEngine: scatter-gather queries over partition shards.

The sharded engine presents the exact :meth:`RQTreeEngine.query`
signature over ``K`` partition-aligned shards, each holding an
independent RQ-tree on its slice of the graph (built in its own worker
process in ``mode="process"``).  A query runs in three steps:

1. **Scatter** — sources are routed to their owning shards
   (:attr:`ShardPlan.shard_of`) and each owning shard answers the
   sub-query ``RS(S ∩ shard, η)`` on its subgraph: candidate generation
   plus most-likely-path verification, under the remaining slice of the
   query budget.  Shards hold disjoint node sets, so sub-queries carry
   no overlapping work and run concurrently — across the shards of one
   query and across concurrent queries (each worker is its own
   process, so the GIL stops mattering).
2. **Gather** — per-shard candidate sets, locally certified answers,
   and instrumentation are merged.  A local certificate is globally
   sound (a path inside a shard subgraph is a path of ``G``); a local
   *rejection* is not (the best path may cross shards), so only
   confirmations survive the merge.
3. **Refine** — one *bounded* cross-shard pass accounts for every path
   the shards could not see.  A truncated multi-source Dijkstra over
   the whole graph (frontier arcs included), cut off at the query
   threshold, expands only nodes whose most-likely-path probability
   can still reach ``η`` — the answer's own neighbourhood, not the
   graph.  For ``method="lb"`` this *is* the final answer (and it
   equals the single-engine answer exactly: any prefix of an
   above-threshold path is itself above threshold, so candidate
   restriction never hides an optimal path).  For ``"lb+"`` the
   edge-packing verifier reruns over the merged pool.  For ``"mc"``
   the existing batched sampling kernel verifies the merged pool on
   the *whole* graph — per-shard MC would miss cross-shard worlds —
   with the pool widened by a most-likely-path floor
   (``mc_refine_floor``); at floor 0 this falls back to whole-graph
   MC over all nodes.

Degradation mirrors the single-engine budget contract: an expired
deadline skips refinement and returns the shard certificates (sound,
possibly incomplete); a dead or timed-out shard marks the answer
degraded but never fails the query — for ``"lb"`` the refinement pass
recomputes the full answer anyway, so even a query that loses every
shard still answers exactly.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Union

from ..core.candidates import CandidateResult
from ..core.engine import QueryResult, RQTreeEngine
from ..errors import (
    InvalidThresholdError,
    NodeNotFoundError,
    ShardUnavailableError,
)
from ..graph.paths import (
    hop_bounded_path_probabilities,
    most_likely_path_probabilities,
)
from ..graph.uncertain import UncertainGraph
from ..core.verification import packing_bounds
from ..estimators import (
    AUTO,
    EstimateRequest,
    PortfolioConfig,
    QueryPlanner,
    get_estimator,
    sampling_methods,
    validate_method,
)
from ..resilience.budget import (
    CONFIRMED,
    REJECTED,
    UNVERIFIED,
    BudgetClock,
    QueryBudget,
)
from .plan import ShardPlan, build_shard_plan
from .runtime import build_shard_payload
from .supervisor import ShardSupervisor, SupervisorPolicy
from .worker import InlineShardClient, ProcessShardClient

__all__ = ["ShardedRQTreeEngine"]

#: Mirrors repro.core.verification._ETA_SLACK: the relative tolerance
#: the lower-bound verifier applies when comparing against eta.  The
#: gateway's refinement pass must use the identical cutoff to reproduce
#: single-engine answers bit for bit.
_ETA_SLACK = 1e-9

#: Grace added to a budgeted query's shard-response timeout: covers
#: queue hops so a shard that honours its (already expired) deadline
#: still gets to deliver its degraded partial answer.
_WAIT_GRACE_SECONDS = 2.0


class ShardedRQTreeEngine:
    """K partition-aligned shard engines behind one query facade.

    Build one directly over a graph::

        sharded = ShardedRQTreeEngine.build(graph, shards=4, seed=7)
        try:
            result = sharded.query([source], eta=0.6)
        finally:
            sharded.close()

    or use it as a context manager.  The query surface is identical to
    :class:`RQTreeEngine` — the serving layer swaps one for the other
    without changes to request handling.

    Parameters (``build``)
    ----------------------
    shards:
        Number of shards ``K`` (1 is valid: one worker holding the
        whole graph).
    mode:
        ``"process"`` (default) spawns one worker process per shard;
        ``"inline"`` keeps every shard runtime in-process (tests,
        debugging, fault injection).
    seed:
        Root seed for the shard plan and the per-shard index builds
        (fanned out through :mod:`repro.seeding`).
    mc_refine_floor:
        Pool-widening knob for ``method="mc"``: the refinement pool
        additionally includes every node whose global most-likely-path
        probability is at least ``eta * mc_refine_floor``.  ``0``
        disables the floor and samples the whole graph (the safe,
        expensive fallback).
    shard_timeout_seconds:
        How long an *unbudgeted* query waits for each shard before
        declaring it unavailable (``None`` = wait for the worker or
        its death).  Budgeted queries always wait at most the
        remaining deadline plus a small grace.
    supervise:
        Attach a :class:`~repro.shard.supervisor.ShardSupervisor`:
        dead workers are respawned (shm segments re-attached, index
        deserialized from cache), in-flight sub-queries re-dispatched,
        and each shard runs the healthy → suspect → open-circuit →
        half-open → healthy breaker state machine with backoff and a
        crash-loop budget.  Without it a dead shard stays dead
        (fail-degraded, the pre-supervision behaviour).
    retry_timeout_seconds:
        Supervised only: per-shard, per-attempt response timeout.  A
        shard that is alive but silent for this long is treated as
        hung — its worker is replaced and the sub-query retried once.
        ``None`` disables the attempt timeout.
    hedge_after_seconds:
        Supervised process mode only: straggler hedging delay.  A
        positive value duplicates a still-unanswered sub-query onto a
        fresh worker after that many seconds (first answer wins);
        ``0.0`` derives the delay from the shard's observed p99
        latency; ``None`` (default) disables hedging.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        plan: ShardPlan,
        clients: Sequence[object],
        mode: str,
        flow_engine: str = "dinic",
        mc_refine_floor: float = 0.5,
        shard_timeout_seconds: Optional[float] = None,
        transport: str = "pickle",
        segments: Optional[Sequence[str]] = None,
        supervisor: Optional[ShardSupervisor] = None,
        retry_timeout_seconds: Optional[float] = None,
        hedge_after_seconds: Optional[float] = None,
        planner_config: Optional[PortfolioConfig] = None,
    ) -> None:
        if plan.num_nodes != graph.num_nodes:
            raise ValueError(
                "shard plan and graph disagree on the number of nodes: "
                f"{plan.num_nodes} vs {graph.num_nodes}"
            )
        if not 0.0 <= mc_refine_floor <= 1.0:
            raise ValueError(
                f"mc_refine_floor must be in [0, 1], got {mc_refine_floor}"
            )
        self.graph = graph
        self.plan = plan
        self.mode = mode
        self.flow_engine = flow_engine
        self.mc_refine_floor = mc_refine_floor
        self.shard_timeout_seconds = shard_timeout_seconds
        self.transport = transport
        self.retry_timeout_seconds = retry_timeout_seconds
        self.hedge_after_seconds = hedge_after_seconds
        self._clients = list(clients)
        self._segments = list(segments or [])
        self._supervisor = supervisor
        self._closed = False
        #: Guards the (plan, clients) pair: a live rebalance swaps both
        #: atomically while queries snapshot them together.
        self._routing_lock = threading.Lock()
        #: Cost-based estimator selection for ``method="auto"``; also
        #: caps the exact estimator on explicit ``method="exact"``.
        self.planner = QueryPlanner(planner_config)

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: UncertainGraph,
        shards: int = 4,
        seed: int = 0,
        mode: str = "process",
        max_imbalance: float = 0.1,
        strategy: str = "multilevel",
        flow_engine: str = "dinic",
        mc_refine_floor: float = 0.5,
        shard_timeout_seconds: Optional[float] = None,
        start_timeout: float = 300.0,
        transport: str = "shm",
        supervise: bool = False,
        supervisor_policy: Optional[SupervisorPolicy] = None,
        retry_timeout_seconds: Optional[float] = None,
        hedge_after_seconds: Optional[float] = None,
        planner_config: Optional[PortfolioConfig] = None,
    ) -> "ShardedRQTreeEngine":
        """Plan the partition, then build one engine per shard.

        ``transport`` picks how shard subgraphs reach their workers:
        ``"shm"`` (default) publishes each shard's CSR snapshot into a
        shared-memory segment mapped zero-copy by the worker;
        ``"pickle"`` ships a pickled arc list.  Both produce
        bit-identical answers; shm is the data plane, pickle the
        portable fallback (and is substituted automatically where
        shared memory is unavailable).

        ``supervise=True`` adds the self-healing layer (respawn,
        circuit breakers, redispatch, optional hedging) — see the
        constructor's parameter docs and
        :mod:`repro.shard.supervisor`.
        """
        if mode not in ("process", "inline"):
            raise ValueError(
                f"unknown shard mode {mode!r}; expected 'process' or 'inline'"
            )
        if transport not in ("pickle", "shm"):
            raise ValueError(
                f"unknown shard transport {transport!r}; "
                "expected 'pickle' or 'shm'"
            )
        from . import shm as shm_module

        if transport == "shm" and not shm_module.shm_available():
            cls._registry().counter("shard.shm_unavailable").inc()
            transport = "pickle"
        plan = build_shard_plan(
            graph, shards, seed=seed,
            max_imbalance=max_imbalance, strategy=strategy,
        )
        payloads: List[Dict[str, object]] = []
        clients: List[object] = []
        segments: List[str] = []
        try:
            for shard_id in range(plan.num_shards):
                payload = build_shard_payload(
                    graph, plan, shard_id, seed=seed,
                    flow_engine=flow_engine,
                    max_imbalance=max_imbalance, strategy=strategy,
                    transport=transport,
                )
                if "shm" in payload:
                    segments.append(payload["shm"]["name"])
                payloads.append(payload)
            if mode == "process":
                # Start every worker before waiting on any: the K index
                # builds overlap instead of serializing.
                clients = [ProcessShardClient(p) for p in payloads]
                for client in clients:
                    client.wait_ready(timeout=start_timeout)
            else:
                clients = [InlineShardClient(p) for p in payloads]
            supervisor = None
            if supervise:
                supervisor = ShardSupervisor(
                    clients, payloads, mode=mode,
                    policy=supervisor_policy, seed=seed,
                )
                supervisor.start()
        except BaseException:
            for client in clients:
                try:
                    client.close()
                except Exception:  # pragma: no cover - best effort
                    pass
            for name in segments:
                shm_module.registry.release(name)
            raise
        return cls(
            graph, plan, clients, mode,
            flow_engine=flow_engine,
            mc_refine_floor=mc_refine_floor,
            shard_timeout_seconds=shard_timeout_seconds,
            transport=transport,
            segments=segments,
            supervisor=supervisor,
            retry_timeout_seconds=retry_timeout_seconds,
            hedge_after_seconds=hedge_after_seconds,
            planner_config=planner_config,
        )

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def supervisor(self) -> Optional[ShardSupervisor]:
        """The attached supervisor, or ``None`` when unsupervised."""
        return self._supervisor

    def _client(self, shard_id: int):
        """The shard's current client (supervision swaps them on
        respawn; the construction-time list goes stale)."""
        if self._supervisor is not None:
            return self._supervisor.client(shard_id)
        return self._clients[shard_id]

    def _routing(self):
        """An atomic ``(plan, clients, supervisor)`` snapshot.

        Queries route through one consistent topology even if a live
        rebalance swaps the pair mid-flight; in-flight queries finish
        against the old clients (which are drained, not killed).
        """
        with self._routing_lock:
            return self.plan, self._clients, self._supervisor

    def _lease_epoch(self):
        """Pin the graph generation this query runs against.

        Returns an object with ``graph`` / ``epoch`` attributes and a
        ``release()`` method.  The frozen base engine has exactly one
        generation — the master graph — so the lease is a no-op
        wrapper; :class:`repro.live.LiveShardedEngine` overrides this
        with refcounted :class:`~repro.live.EpochStore` leases so a
        query admitted at epoch *E* reads epoch *E*'s snapshot even
        while updates land.
        """
        return _FrozenLease(self.graph)

    @property
    def tree_height(self) -> int:
        """Tallest per-shard RQ-tree (the sharded analogue of
        ``engine.tree.height``; used by height-ratio style reporting)."""
        return max(
            (
                self._client(shard_id).tree_height
                for shard_id in range(self.num_shards)
            ),
            default=0,
        )

    def shard_states(self) -> Dict[int, Dict[str, object]]:
        """Per-shard health for ``/healthz``.

        Supervised engines report the full state machine (state,
        structured reason, respawn count, queue depth); unsupervised
        ones report a plain healthy/dead liveness snapshot.
        """
        if self._supervisor is not None:
            return self._supervisor.states()
        snapshot: Dict[int, Dict[str, object]] = {}
        for client in self._clients:
            alive = True
            probe = getattr(client, "is_alive", None)
            if probe is not None:
                alive = bool(probe())
            snapshot[client.shard_id] = {
                "state": "healthy" if alive else "dead",
                "reason": None if alive else "worker process died",
                "respawns": 0,
                "queue_depth": getattr(client, "queue_depth", 0),
            }
        return snapshot

    def close(self) -> None:
        """Shut down every shard worker and release the engine's
        shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            # Owns the *current* clients (and any standbys/retired
            # stragglers); client.close() below is then a no-op for
            # whatever overlaps.
            self._supervisor.close()
        for client in self._clients:
            client.close()
        if self._segments:
            from . import shm as shm_module

            # Release after the workers have exited: the creator's
            # release unlinks, and the attach side only ever closes.
            for name in self._segments:
                shm_module.registry.release(name)
            self._segments = []

    def __enter__(self) -> "ShardedRQTreeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        method: str = "lb",
        num_samples: int = 1000,
        seed: Optional[int] = None,
        multi_source_mode: str = "greedy",
        max_hops: Optional[int] = None,
        backend: str = "auto",
        budget: Optional[QueryBudget] = None,
        coin_source=None,
    ) -> QueryResult:
        """Answer ``RS(S, eta)`` by scatter, gather, and refinement.

        Same signature, semantics, and degradation contract as
        :meth:`RQTreeEngine.query`; see the module docstring for how
        each method's verification is distributed.
        """
        source_list = RQTreeEngine._normalize_sources(sources)
        for node in source_list:
            if node not in self.graph:
                raise NodeNotFoundError(node)
        if math.isnan(eta) or not 0.0 < eta < 1.0:
            raise InvalidThresholdError(eta, context="sharded query")
        validate_method(method, max_hops=max_hops)
        if num_samples <= 0 and (
            method == AUTO or method in sampling_methods()
        ):
            raise ValueError(
                f"num_samples must be positive, got {num_samples}"
            )
        if self._closed:
            raise ShardUnavailableError(-1, "engine is closed")
        clock = budget.start() if budget is not None else None
        registry = self._registry()
        registry.counter("shard.queries").inc()

        # Pin the generation: every phase of this query — scatter,
        # stale-response demotion, whole-graph refinement — reads the
        # leased graph, never the (possibly mutating) master.
        lease = self._lease_epoch()
        try:
            graph = lease.graph
            epoch = lease.epoch

            # -- scatter / gather --------------------------------------
            scatter_start = time.perf_counter()
            gather = self._scatter_gather(
                source_list, eta, multi_source_mode, max_hops, clock,
                registry, epoch,
            )
            candidate_seconds = time.perf_counter() - scatter_start
            registry.histogram("shard.scatter_seconds").observe(
                candidate_seconds
            )

            # -- refine -------------------------------------------------
            refine_start = time.perf_counter()
            refined = self._refine(
                source_list, eta, method, num_samples, seed, max_hops,
                backend, clock, coin_source, gather, graph,
            )
            verification_seconds = time.perf_counter() - refine_start
            registry.histogram("shard.refine_seconds").observe(
                verification_seconds
            )
        finally:
            lease.release()

        degraded = gather["degraded"] or refined["degraded"]
        degraded_reason = (
            gather["degraded_reason"] or refined["degraded_reason"]
        )
        if degraded:
            registry.counter("shard.degraded").inc()

        candidate_result = CandidateResult(
            candidates=refined["pool"],
            clusters_visited=gather["clusters_visited"],
            flow_calls=gather["flow_calls"],
            final_upper_bound=0.0,
            max_subgraph_nodes=gather["max_subgraph_nodes"],
            max_subgraph_arcs=gather["max_subgraph_arcs"],
        )
        return QueryResult(
            nodes=refined["kept"],
            eta=eta,
            sources=source_list,
            method=method,
            candidate_result=candidate_result,
            candidate_seconds=candidate_seconds,
            verification_seconds=verification_seconds,
            tree_height=self.tree_height,
            num_graph_nodes=graph.num_nodes,
            statuses=refined["statuses"],
            degraded=degraded,
            degraded_reason=degraded_reason,
            worlds_used=refined["worlds_used"],
            achieved_confidence=_achieved_confidence(refined["statuses"]),
            backend_fallbacks=refined["backend_fallbacks"],
            shards_recovered=gather["shards_recovered"],
            estimator=refined.get("estimator") or method,
            planner_reason=refined.get("planner_reason"),
            estimates=refined.get("estimates") or {},
            epoch=epoch,
        )

    # ------------------------------------------------------------------
    # Phase 1+2: scatter / gather
    # ------------------------------------------------------------------
    def _scatter_gather(
        self,
        source_list: List[int],
        eta: float,
        multi_source_mode: str,
        max_hops: Optional[int],
        clock: Optional[BudgetClock],
        registry,
        epoch: int = 0,
    ) -> Dict[str, object]:
        plan, clients, supervisor = self._routing()
        by_shard: Dict[int, List[int]] = {}
        for node in source_list:
            by_shard.setdefault(plan.shard_of[node], []).append(node)
        sub_budget = self._sub_budget(clock)

        handles = []
        for shard_id in sorted(by_shard):
            request = {
                "sources": by_shard[shard_id],
                "eta": eta,
                "multi_source_mode": multi_source_mode,
                "max_hops": max_hops,
                "budget": sub_budget,
                "epoch": epoch,
            }
            try:
                if supervisor is not None:
                    handles.append(
                        (shard_id, supervisor.submit(shard_id, request))
                    )
                else:
                    handles.append(
                        (shard_id, clients[shard_id].submit(request))
                    )
            except ShardUnavailableError as error:
                handles.append((shard_id, error))

        merged: Dict[str, object] = {
            "candidates": set(),
            "confirmed": set(),
            "clusters_visited": 0,
            "flow_calls": 0,
            "max_subgraph_nodes": 0,
            "max_subgraph_arcs": 0,
            "degraded": False,
            "degraded_reason": None,
            "shards_recovered": 0,
        }
        failures: List[str] = []
        shard_degraded: Optional[str] = None
        for shard_id, handle in handles:
            if isinstance(handle, ShardUnavailableError):
                failures.append(str(handle))
                registry.counter("shard.unavailable").inc()
                continue
            try:
                if supervisor is not None:
                    response, recovered = supervisor.wait(
                        handle,
                        timeout=self._wait_timeout(clock),
                        attempt_timeout=self.retry_timeout_seconds,
                        hedge_after=self._hedge_delay(shard_id),
                    )
                    if recovered:
                        merged["shards_recovered"] += 1
                        registry.counter("shard.supervisor.recovered_answers").inc()
                else:
                    response = clients[shard_id].wait(
                        handle, timeout=self._wait_timeout(clock)
                    )
            except ShardUnavailableError as error:
                failures.append(str(error))
                registry.counter("shard.unavailable").inc()
                continue
            if response.get("epoch", epoch) != epoch:
                # The worker answered from a different generation than
                # this query was admitted on (an update raced the
                # scatter, or a respawn landed on a newer payload).
                # Its certificates may reflect arcs this epoch does not
                # have, so demote everything to candidates: the
                # refinement pass recomputes the exact answer from the
                # leased epoch's graph, which for lb means the final
                # answer never mixes generations.
                registry.counter("live.stale_shard_responses").inc()
                merged["candidates"].update(response["candidates"])
                merged["candidates"].update(response["kept"])
                merged["clusters_visited"] += response["clusters_visited"]
                merged["flow_calls"] += response["flow_calls"]
                continue
            merged["candidates"].update(response["candidates"])
            merged["confirmed"].update(response["kept"])
            merged["clusters_visited"] += response["clusters_visited"]
            merged["flow_calls"] += response["flow_calls"]
            merged["max_subgraph_nodes"] = max(
                merged["max_subgraph_nodes"],
                response["max_subgraph_nodes"],
            )
            merged["max_subgraph_arcs"] = max(
                merged["max_subgraph_arcs"], response["max_subgraph_arcs"]
            )
            registry.counter(f"shard.{shard_id}.queries").inc()
            registry.histogram(f"shard.{shard_id}.seconds").observe(
                response["seconds"]
            )
            if response["degraded"] and shard_degraded is None:
                shard_degraded = (
                    f"shard {shard_id}: "
                    f"{response['degraded_reason'] or 'budget exhausted'}"
                )
        if failures:
            merged["degraded"] = True
            merged["degraded_reason"] = "; ".join(failures)
        elif shard_degraded is not None:
            merged["degraded"] = True
            merged["degraded_reason"] = shard_degraded
        return merged

    # ------------------------------------------------------------------
    # Phase 3: bounded cross-shard refinement
    # ------------------------------------------------------------------
    def _refine(
        self,
        source_list: List[int],
        eta: float,
        method: str,
        num_samples: int,
        seed: Optional[int],
        max_hops: Optional[int],
        backend: str,
        clock: Optional[BudgetClock],
        coin_source,
        gather: Dict[str, object],
        graph: Optional[UncertainGraph] = None,
    ) -> Dict[str, object]:
        if graph is None:
            graph = self.graph
        source_set = set(source_list)
        candidates: Set[int] = gather["candidates"]
        confirmed: Set[int] = gather["confirmed"]

        if clock is not None and clock.expired():
            # Deadline gone before the cross-shard pass could run: the
            # shard certificates (plus the sources themselves, answers
            # by definition) are the sound partial answer.
            kept = confirmed | source_set
            pool = candidates | kept
            statuses = {
                node: (CONFIRMED if node in kept else UNVERIFIED)
                for node in pool
            }
            return _refined(
                kept, pool, statuses, degraded=True,
                reason="deadline expired before cross-shard refinement",
                estimator=method if method != AUTO else "",
                planner_reason=(
                    None if method == AUTO
                    else f"explicit method {method!r}"
                ),
            )

        cutoff = eta * (1.0 - _ETA_SLACK)
        probe = cutoff
        if method != "lb" and self.mc_refine_floor > 0.0:
            probe = min(cutoff, eta * self.mc_refine_floor)
        if max_hops is not None:
            reachable = hop_bounded_path_probabilities(
                graph, source_list, max_hops, min_probability=probe
            )
        else:
            reachable = most_likely_path_probabilities(
                graph, source_list, min_probability=probe
            )
        certified = {
            node for node, prob in reachable.items() if prob >= cutoff
        }

        if method == "lb":
            kept = certified | confirmed
            pool = candidates | kept
            statuses = {
                node: (CONFIRMED if node in kept else REJECTED)
                for node in pool
            }
            estimates = {
                node: reachable.get(node, 0.0) for node in pool
            }
            for s in source_set:
                estimates[s] = 1.0
            return _refined(
                kept, pool, statuses,
                estimates=estimates, estimator="lb",
                planner_reason=f"explicit method {method!r}",
            )

        if method == "lb+":
            pool = candidates | set(reachable) | certified | source_set
            if clock is not None and clock.expired():
                kept = certified | confirmed | source_set
                statuses = {
                    node: (CONFIRMED if node in kept else UNVERIFIED)
                    for node in pool
                }
                return _refined(
                    kept, pool, statuses, degraded=True,
                    reason="deadline expired before packing verification",
                    estimator="lb+",
                    planner_reason=f"explicit method {method!r}",
                )
            kept, bounds = packing_bounds(
                graph, source_list, eta, pool
            )
            kept |= certified | confirmed
            statuses = {
                node: (CONFIRMED if node in kept else REJECTED)
                for node in pool
            }
            return _refined(
                kept, pool, statuses,
                estimates=bounds, estimator="lb+",
                planner_reason=f"explicit method {method!r}",
            )

        if method == "exact":
            # The exact pool is built from the gateway's *whole-graph*
            # MLP pass only — never from the shard candidate sets,
            # which vary with the shard count.  The pool (and therefore
            # the induced subgraph, the traversal, and every estimate)
            # is thus bit-identical across shard layouts.  Shard
            # confirmation certificates are not folded in for the same
            # reason; they are dominated anyway — every MLP-certified
            # path lies inside the pool, so the exact subgraph
            # reliability confirms at least as much.
            pool = set(reachable) | certified | source_set
            request = EstimateRequest(
                graph=graph,
                sources=source_list,
                eta=eta,
                candidates=pool,
                num_samples=num_samples,
                seed=seed,
                max_hops=max_hops,
                backend=backend,
                clock=clock,
                coin_source=coin_source,
                config=self.planner.config,
            )
            report = get_estimator("exact").estimate(request)
            reason = f"explicit method {method!r}"
            if report.notes:
                reason = f"{reason}; {report.notes}"
            return {
                "kept": set(report.kept),
                "pool": pool,
                "statuses": dict(report.statuses),
                "degraded": report.degraded,
                "degraded_reason": report.degraded_reason,
                "worlds_used": report.worlds_used,
                "backend_fallbacks": report.backend_fallbacks,
                "estimates": dict(report.estimates),
                "estimator": report.estimator or "exact",
                "planner_reason": reason,
            }

        # Sampling methods (mc / rss / lazy) and "auto": one
        # whole-graph estimator pass over the merged pool through the
        # existing kernels.
        if method == "mc" and self.mc_refine_floor <= 0.0:
            pool = set(graph.nodes())
        else:
            pool = candidates | set(reachable) | certified | source_set
        request = EstimateRequest(
            graph=graph,
            sources=source_list,
            eta=eta,
            candidates=pool,
            num_samples=num_samples,
            seed=seed,
            max_hops=max_hops,
            backend=backend,
            clock=clock,
            coin_source=coin_source,
            config=self.planner.config,
        )
        if method == AUTO:
            decision = self.planner.plan(request)
            name = decision.estimator
            reason = decision.reason
        else:
            name = method
            reason = f"explicit method {method!r}"
        report = get_estimator(name).estimate(request)
        if report.notes:
            reason = f"{reason}; {report.notes}"
        kept = set(report.kept)
        statuses = dict(report.statuses)
        if report.degraded or gather["degraded"]:
            # Partial sampling: shard lower-bound certificates are
            # certain, so fold them back in (degraded, never wrong).
            kept |= confirmed
            for node in confirmed:
                statuses[node] = CONFIRMED
        return {
            "kept": kept,
            "pool": pool,
            "statuses": statuses,
            "degraded": report.degraded,
            "degraded_reason": report.degraded_reason,
            "worlds_used": report.worlds_used,
            "backend_fallbacks": report.backend_fallbacks,
            "estimates": dict(report.estimates),
            "estimator": report.estimator or name,
            "planner_reason": reason,
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _sub_budget(
        self, clock: Optional[BudgetClock]
    ) -> Optional[Dict[str, object]]:
        """Serialize the *remaining* budget for a shard sub-query.

        The deadline is re-anchored at send time (workers cannot share
        the gateway's clock), so queue hops eat into it — conservative
        in the right direction.  World caps stay with the gateway,
        where all sampling happens.
        """
        if clock is None:
            return None
        budget = clock.budget
        deadline = budget.deadline_seconds
        return {
            "deadline_seconds": (
                None if deadline is None
                else max(clock.remaining_seconds(), 1e-6)
            ),
            "max_candidate_nodes": budget.max_candidate_nodes,
            "confidence": budget.confidence,
        }

    def _wait_timeout(
        self, clock: Optional[BudgetClock]
    ) -> Optional[float]:
        if clock is not None and clock.budget.deadline_seconds is not None:
            return clock.remaining_seconds() + _WAIT_GRACE_SECONDS
        return self.shard_timeout_seconds

    def _hedge_delay(self, shard_id: int) -> Optional[float]:
        """The hedging delay for one dispatch: fixed when configured,
        p99-derived when ``hedge_after_seconds == 0``, else off."""
        if self._supervisor is None or self.hedge_after_seconds is None:
            return None
        if self.hedge_after_seconds > 0:
            return self.hedge_after_seconds
        return self._supervisor.hedge_delay(shard_id)

    @staticmethod
    def _registry():
        from ..service.metrics import get_registry

        return get_registry()


class _FrozenLease:
    """The base engine's no-op epoch lease (one immutable generation)."""

    __slots__ = ("graph", "epoch")

    def __init__(self, graph: UncertainGraph) -> None:
        self.graph = graph
        self.epoch = graph.epoch

    def release(self) -> None:
        pass


def _refined(
    kept: Set[int],
    pool: Set[int],
    statuses: Dict[int, str],
    degraded: bool = False,
    reason: Optional[str] = None,
    estimates: Optional[Dict[int, float]] = None,
    estimator: str = "",
    planner_reason: Optional[str] = None,
) -> Dict[str, object]:
    return {
        "kept": kept,
        "pool": pool,
        "statuses": statuses,
        "degraded": degraded,
        "degraded_reason": reason,
        "worlds_used": 0,
        "backend_fallbacks": 0,
        "estimates": estimates if estimates is not None else {},
        "estimator": estimator,
        "planner_reason": planner_reason,
    }


def _achieved_confidence(statuses: Dict[str, str]) -> float:
    if not statuses:
        return 1.0
    decided = sum(1 for status in statuses.values() if status != UNVERIFIED)
    return decided / len(statuses)
