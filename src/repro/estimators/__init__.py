"""Estimator portfolio and cost-based query planner.

The verification phase of every query dispatches through this package:
a registry of pluggable :class:`Estimator` strategies (the paper's
``lb`` / ``lb+`` / ``mc`` plus recursive stratified sampling, lazy
BFS-sharing, and a treewidth-gated exact path) and a
:class:`QueryPlanner` that picks one per candidate batch from subgraph
statistics when ``method="auto"``.

See ``docs/ARCHITECTURE.md`` ("Estimator portfolio & planner") for the
decision flow and the cost-model inputs.
"""

from .base import EstimateRequest, Estimator
from .config import DEFAULT_CONFIG, PortfolioConfig
from .planner import PlanDecision, QueryPlanner, default_planner
from .registry import (
    AUTO,
    available_methods,
    get_estimator,
    is_cacheable,
    methods_supporting_max_hops,
    register,
    sampling_methods,
    validate_method,
)
from .stats import SubgraphStats, collect_stats, treewidth_upper_bound

__all__ = [
    "AUTO",
    "DEFAULT_CONFIG",
    "EstimateRequest",
    "Estimator",
    "PlanDecision",
    "PortfolioConfig",
    "QueryPlanner",
    "SubgraphStats",
    "available_methods",
    "collect_stats",
    "default_planner",
    "get_estimator",
    "is_cacheable",
    "methods_supporting_max_hops",
    "register",
    "sampling_methods",
    "treewidth_upper_bound",
    "validate_method",
]
