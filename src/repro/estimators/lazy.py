"""Lazy-propagation BFS-sharing estimator (``method="lazy"``).

Samples all ``K`` worlds in *one shared traversal* instead of ``K``
independent BFS passes ("An In-Depth Comparison of s-t Reliability
Algorithms over Uncertain Graphs", PAPERS.md):

* **numpy path** — one batched ``run(K)`` call on the packed kernel
  (the kernel already shares the traversal across its bit lanes).
* **python path** — a big-integer bitmask BFS: each node carries a
  ``K``-bit mask of the worlds that reached it, each arc lazily draws a
  ``K``-bit Bernoulli(p) coin mask *the first time the traversal
  touches it*, and one level-synchronous fixpoint propagates
  ``fresh & coin & ~reached`` along arcs.  Arc coins for the whole
  batch are generated bitwise by lane-parallel comparison of a uniform
  variate against ``p`` (expected ~2 ``getrandbits(K)`` calls per arc),
  so the per-world cost collapses from a full BFS to a handful of
  big-int AND/OR operations.

Level-synchrony makes a bit's arrival round equal its hop distance in
that world, so the ``max_hops`` (distance-constrained) variant falls
out for free by capping the rounds.

Deterministic per seed (draw order is sorted and fixed), seeded through
the caller; the estimate distribution is identical to plain MC — each
world is still an independent possible-world draw — only the traversal
is shared.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from ..accel import resolve_backend
from ..core.verification import (
    VerificationReport,
    _check,
    _verification_subset,
)
from ..graph.sampling import ReachabilityFrequencyEstimator
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import CONFIRMED, REJECTED
from .base import EstimateRequest, Estimator
from .montecarlo import predicted_sampling_seconds
from .stats import SubgraphStats

__all__ = ["LazySharingEstimator"]

#: Per-arc-per-world cost of the big-int path: ~60x cheaper than a
#: per-world python BFS step (one C-speed mask op covers 30+ worlds).
_MASK_WORLD_UNIT = 6e-9


def _biased_mask(rng: random.Random, p: float, k: int, full: int) -> int:
    """A ``k``-bit mask whose bits are independent Bernoulli(*p*) draws.

    Lane-parallel comparison of a uniform variate ``U`` against ``p``,
    bit by bit from the MSB: a lane is decided at the first bit where
    ``U`` and ``p`` differ (``p``-bit 1 / ``U``-bit 0 means ``U < p`` —
    success).  Expected ~2 ``getrandbits`` calls regardless of ``k``.
    """
    if p >= 1.0:
        return full
    if p <= 0.0:
        return 0
    undecided = full
    result = 0
    while undecided:
        p *= 2.0
        if p >= 1.0:
            p -= 1.0
            r = rng.getrandbits(k)
            result |= undecided & ~r
            undecided &= r
        else:
            undecided &= ~rng.getrandbits(k)
        if p <= 0.0:
            # Remaining p-bits are all zero: undecided lanes have
            # U == p so far, hence U >= p — no further successes.
            break
    return result


class LazySharingEstimator(Estimator):
    """All-worlds-in-one-pass sampling via shared bitmask propagation."""

    name = "lazy"
    samples_worlds = True
    supports_max_hops = True

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        worlds = request.num_samples
        if stats.max_worlds is not None:
            worlds = min(worlds, stats.max_worlds)
        try:
            backend = resolve_backend(request.backend, stats.num_nodes)
        except Exception:
            backend = "python"
        if backend == "numpy":
            # Same batched kernel as MC, minus the chunking overhead.
            return predicted_sampling_seconds(stats, request) * 0.9
        work = stats.num_nodes + stats.num_arcs
        return _MASK_WORLD_UNIT * work * worlds + 5e-5

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        source_set = _check(request.eta, request.sources)
        if request.num_samples <= 0:
            raise ValueError(
                f"num_samples must be positive, got {request.num_samples}"
            )
        clock = request.clock
        subset, dropped = _verification_subset(
            source_set, request.candidates, clock
        )
        statuses: Dict[int, str] = {}
        present_sources = sorted(source_set & subset)
        worlds = request.num_samples
        if clock is not None and clock.budget.max_worlds is not None:
            worlds = min(worlds, clock.budget.max_worlds)

        degraded_reason: Optional[str] = None
        backend = resolve_backend(request.backend, len(subset))
        if backend == "numpy":
            counts, done, fallbacks, degraded_reason = self._run_batched(
                request, subset, present_sources, worlds
            )
        else:
            counts, done, fallbacks, degraded_reason = self._run_bitmask(
                request.graph, subset, present_sources, worlds, request
            )

        from ..resilience.budget import UNVERIFIED

        threshold = request.eta * done
        for node in subset:
            if done == 0 and degraded_reason is not None:
                # Deadline hit before a single world: nothing to decide
                # non-source candidates with.
                statuses[node] = UNVERIFIED
            else:
                statuses[node] = (
                    CONFIRMED
                    if done > 0 and counts.get(node, 0) >= threshold
                    else REJECTED
                )
        for node in present_sources:
            statuses[node] = CONFIRMED
        for node in dropped:
            statuses[node] = UNVERIFIED
        if dropped and degraded_reason is None:
            degraded_reason = (
                "candidate-subgraph cap left candidates unverified"
            )
        kept = {n for n, s in statuses.items() if s == CONFIRMED}
        estimates = (
            {node: count / done for node, count in counts.items()}
            if done > 0
            else {}
        )
        report = VerificationReport(
            kept=kept,
            statuses=statuses,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            worlds_used=done,
            backend_fallbacks=fallbacks,
            estimates=estimates,
        )
        report.estimator = self.name
        return report

    @staticmethod
    def _run_batched(request, subset, present_sources, worlds):
        """Numpy path: the packed kernel in one call (a few slabs under
        a budget so the deadline is honoured between slabs)."""
        estimator = ReachabilityFrequencyEstimator(
            request.graph,
            present_sources,
            seed=request.seed,
            allowed=subset,
            max_hops=request.max_hops,
            backend=request.backend,
        )
        clock = request.clock
        degraded_reason = None
        if clock is None:
            estimator.run(worlds)
            done = worlds
        else:
            slabs = max(1, request.config.lazy_slabs)
            slab = max(1, -(-worlds // slabs))
            done = 0
            while done < worlds:
                if clock.expired():
                    degraded_reason = (
                        "deadline expired during lazy sampling "
                        f"({done}/{worlds} worlds)"
                    )
                    break
                step = min(slab, worlds - done)
                estimator.run(step)
                done += step
        return (
            dict(estimator.counts()),
            done,
            estimator.fallbacks,
            degraded_reason,
        )

    @staticmethod
    def _run_bitmask(
        graph: UncertainGraph,
        subset: Set[int],
        present_sources,
        worlds: int,
        request: EstimateRequest,
    ):
        """Python path: shared big-integer bitmask BFS."""
        rng = random.Random(request.seed)
        clock = request.clock
        max_hops = request.max_hops
        full = (1 << worlds) - 1
        reached: Dict[int, int] = {s: full for s in present_sources}
        fresh: Dict[int, int] = {s: full for s in present_sources}
        coins: Dict[tuple, int] = {}
        rounds = 0
        degraded_reason = None
        while fresh and (max_hops is None or rounds < max_hops):
            if clock is not None and clock.expired():
                degraded_reason = (
                    "deadline expired during lazy propagation "
                    f"(round {rounds})"
                )
                break
            advancing: Dict[int, int] = {}
            for u in sorted(fresh):
                bits = fresh[u]
                for v in sorted(graph.successors(u)):
                    if v not in subset:
                        continue
                    coin = coins.get((u, v))
                    if coin is None:
                        coin = _biased_mask(
                            rng, graph.successors(u)[v], worlds, full
                        )
                        coins[(u, v)] = coin
                    add = bits & coin & ~reached.get(v, 0)
                    if add:
                        reached[v] = reached.get(v, 0) | add
                        advancing[v] = advancing.get(v, 0) | add
            fresh = advancing
            rounds += 1
        counts = {node: mask.bit_count() for node, mask in reached.items()}
        return counts, worlds, 0, degraded_reason
