"""The cost-based query planner behind ``method="auto"``.

Per candidate batch the planner collects cheap deterministic subgraph
statistics (:func:`repro.estimators.stats.collect_stats`), asks every
eligible estimator's cost model for a predicted wall time, and picks:

1. ``lb`` when there is nothing beyond the sources to verify, or when
   the remaining deadline cannot pay for any sampler (a certified bound
   is the best thing a near-dead budget can buy);
2. ``exact`` when the treewidth probe fits the caps and the predicted
   exact cost is within ``exact_cost_bias`` of the cheapest sampler —
   zero variance at comparable latency always wins;
3. under a wall-clock deadline, ``mc`` — chunked sampling with Wilson
   early stopping is the only estimator that can stop mid-batch;
4. otherwise ``rss`` when the pivot arcs carry enough of the total
   variance to pay for stratification, else whichever of ``lazy`` /
   ``mc`` predicts cheaper (``lazy`` wins on the pure-python path by a
   wide margin — one shared bitmask traversal vs per-world BFS).

The decision, its reason, and regret signals are recorded in
``planner.*`` metrics: ``planner.decisions.<name>`` counters,
``planner.plan_seconds``, and after execution
``planner.cost_error_seconds`` (|predicted − actual| for the chosen
estimator — the tunable-regret signal named by the ROADMAP) plus
``planner.regret_seconds`` (actual − cheapest predicted, clamped at 0).

Decisions are pure functions of the query and graph — no randomness —
so planning is deterministic per seed by construction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .base import EstimateRequest
from .config import DEFAULT_CONFIG, PortfolioConfig
from .registry import get_estimator, methods_supporting_max_hops
from .stats import SubgraphStats, collect_stats

__all__ = ["PlanDecision", "QueryPlanner", "default_planner"]


@dataclass(frozen=True)
class PlanDecision:
    """One planning outcome: the chosen estimator and why."""

    estimator: str
    reason: str
    predicted_seconds: Dict[str, float] = field(default_factory=dict)
    stats: Optional[SubgraphStats] = None

    @property
    def predicted(self) -> float:
        """Predicted seconds of the chosen estimator (inf if unknown)."""
        return self.predicted_seconds.get(self.estimator, math.inf)


class QueryPlanner:
    """Cost-based estimator selection for one engine."""

    def __init__(self, config: Optional[PortfolioConfig] = None) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG

    # ------------------------------------------------------------------
    def plan(self, request: EstimateRequest) -> PlanDecision:
        """Choose an estimator for *request* and record the decision."""
        start = time.perf_counter()
        config = self.config
        clock = request.clock
        stats = collect_stats(
            request.graph,
            request.candidates,
            request.sources,
            rss_pivots=config.rss_pivots,
            probe_node_cap=config.exact_node_cap,
            probe_arc_cap=config.exact_arc_cap,
            width_abort_above=config.exact_width_cap,
            min_fill_node_cap=config.min_fill_node_cap,
            remaining_seconds=(
                clock.remaining_seconds() if clock is not None else None
            ),
            max_worlds=(
                clock.budget.max_worlds if clock is not None else None
            ),
        )
        pool = ["lb", "lb+", "mc", "rss", "lazy", "exact"]
        if request.max_hops is not None:
            supported = set(methods_supporting_max_hops(include_auto=False))
            pool = [name for name in pool if name in supported]
        predicted = {
            name: get_estimator(name).cost(stats, request) for name in pool
        }
        decision = self._choose(request, stats, predicted)
        self._record(decision, time.perf_counter() - start)
        return decision

    def _choose(
        self,
        request: EstimateRequest,
        stats: SubgraphStats,
        predicted: Dict[str, float],
    ) -> PlanDecision:
        config = self.config
        clock = request.clock
        samplers = [
            name for name in ("mc", "rss", "lazy") if name in predicted
        ]
        cheapest_sampler = min(
            samplers, key=lambda name: (predicted[name], name)
        )
        sampler_cost = predicted[cheapest_sampler]

        if stats.num_nodes <= stats.sources_in_candidates:
            return PlanDecision(
                "lb",
                "trivial batch: no candidates beyond the sources",
                predicted, stats,
            )
        if (
            clock is not None
            and stats.remaining_seconds is not None
            and stats.remaining_seconds < sampler_cost
        ):
            return PlanDecision(
                "lb",
                (
                    f"remaining budget {stats.remaining_seconds * 1e3:.1f} ms "
                    f"below cheapest sampler's predicted "
                    f"{sampler_cost * 1e3:.1f} ms; certified bound only"
                ),
                predicted, stats,
            )
        exact_cost = predicted.get("exact", math.inf)
        if exact_cost <= config.exact_cost_bias * sampler_cost:
            return PlanDecision(
                "exact",
                (
                    f"treewidth estimate {stats.treewidth_estimate} within "
                    f"cap {config.exact_width_cap}; exact predicted "
                    f"{exact_cost * 1e3:.2f} ms vs cheapest sampler "
                    f"{sampler_cost * 1e3:.2f} ms — zero variance wins"
                ),
                predicted, stats,
            )
        if (
            clock is not None
            and clock.budget.deadline_seconds is not None
            and "mc" in predicted
        ):
            return PlanDecision(
                "mc",
                "deadline budget: chunked MC is the only estimator with "
                "Wilson early stopping",
                predicted, stats,
            )
        if (
            "rss" in predicted
            and stats.variance_concentration >= config.rss_concentration
            and stats.num_nodes <= config.rss_node_cap
        ):
            return PlanDecision(
                "rss",
                (
                    f"pivot arcs carry "
                    f"{stats.variance_concentration:.0%} of arc variance "
                    f"(threshold {config.rss_concentration:.0%}); "
                    "stratification pays"
                ),
                predicted, stats,
            )
        return PlanDecision(
            cheapest_sampler,
            (
                f"cheapest sampler predicted "
                f"{sampler_cost * 1e3:.2f} ms on n={stats.num_nodes} "
                f"m={stats.num_arcs}"
            ),
            predicted, stats,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _record(decision: PlanDecision, plan_seconds: float) -> None:
        from ..service.metrics import get_registry

        registry = get_registry()
        registry.counter("planner.decisions").inc()
        registry.counter(f"planner.decisions.{decision.estimator}").inc()
        registry.histogram("planner.plan_seconds").observe(plan_seconds)

    @staticmethod
    def record_outcome(
        decision: PlanDecision, actual_seconds: float
    ) -> None:
        """Post-execution regret signals for policy tuning."""
        from ..service.metrics import get_registry

        registry = get_registry()
        predicted = decision.predicted
        if math.isfinite(predicted):
            registry.histogram("planner.cost_error_seconds").observe(
                abs(actual_seconds - predicted)
            )
        finite = [
            cost
            for cost in decision.predicted_seconds.values()
            if math.isfinite(cost)
        ]
        if finite:
            registry.histogram("planner.regret_seconds").observe(
                max(0.0, actual_seconds - min(finite))
            )


#: Module-level singleton used by surfaces that have no engine of their
#: own (the default planner is stateless apart from its config).
_DEFAULT_PLANNER = QueryPlanner()


def default_planner() -> QueryPlanner:
    return _DEFAULT_PLANNER
