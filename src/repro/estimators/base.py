"""The estimator strategy interface.

An :class:`Estimator` turns one candidate batch into a
:class:`~repro.core.verification.VerificationReport`: per-node statuses
(confirmed / rejected / unverified), optional per-node reliability
estimates, worlds used, and an achieved confidence.  The engine, the
detection helpers, the serving layer, and the sharded gateway all
dispatch through this interface (via :mod:`repro.estimators.registry`)
instead of hard-wiring method names.

Capabilities are plain class attributes so the registry can answer
questions like "which methods support ``max_hops``?" and "is this
method deterministic at this seed?" without instantiating anything
special — the caching layers key cacheability off
:meth:`Estimator.is_deterministic`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import List, Optional, Set

from ..graph.uncertain import UncertainGraph
from ..resilience.budget import CONFIRMED, UNVERIFIED, BudgetClock
from ..core.verification import VerificationReport
from .config import DEFAULT_CONFIG, PortfolioConfig
from .stats import SubgraphStats

__all__ = ["EstimateRequest", "Estimator", "expired_report"]


@dataclass
class EstimateRequest:
    """Everything an estimator needs to verify one candidate batch.

    The fields mirror :meth:`repro.core.engine.RQTreeEngine.query`
    verbatim — the engine builds one request per query and hands it to
    whichever estimator the planner (or the explicit ``method=``) chose.
    """

    graph: UncertainGraph
    sources: List[int]
    eta: float
    candidates: Set[int]
    num_samples: int = 1000
    seed: Optional[int] = None
    max_hops: Optional[int] = None
    backend: str = "auto"
    clock: Optional[BudgetClock] = None
    #: Shared packed-coin stream (cross-query world batching); only the
    #: chunked-MC estimator consumes it.
    coin_source: object = None
    config: PortfolioConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    def with_(self, **changes: object) -> "EstimateRequest":
        """A copy with *changes* applied (dataclass ``replace``)."""
        return replace(self, **changes)


def expired_report(
    sources: List[int], candidates: Set[int], reason: str
) -> VerificationReport:
    """The degraded answer every estimator returns when the budget clock
    is already expired: sources confirmed (``R(S, s) = 1`` needs no
    computation), everything else unverified."""
    source_set = set(sources)
    statuses = {
        node: (CONFIRMED if node in source_set else UNVERIFIED)
        for node in candidates
    }
    return VerificationReport(
        kept={n for n, s in statuses.items() if s == CONFIRMED},
        statuses=statuses,
        degraded=True,
        degraded_reason=reason,
    )


class Estimator(abc.ABC):
    """One verification strategy in the portfolio.

    Subclasses set the capability attributes and implement
    :meth:`cost` (the planner's cost-model hook, predicted seconds) and
    :meth:`estimate` (the actual verification pass).
    """

    #: Registry key and user-facing ``method=`` name.
    name: str = ""
    #: True when the answer is a pure function of the query (no random
    #: stream consumed) — ``lb``, ``lb+`` and ``exact``.
    deterministic_unseeded: bool = False
    #: True when the estimator consumes sampled worlds.
    samples_worlds: bool = False
    #: Whether the distance-constrained variant (``max_hops``) is
    #: supported.
    supports_max_hops: bool = False
    #: Whether a shared coin stream (``coin_source``) is consumed.
    supports_coin_source: bool = False
    #: True when answers are zero-variance (short-circuits Wilson
    #: stopping entirely).
    exact: bool = False

    def is_deterministic(self, seed: Optional[int]) -> bool:
        """Whether two identical queries are guaranteed identical
        answers — the cacheability criterion."""
        return self.deterministic_unseeded or seed is not None

    def validate(self, request: EstimateRequest) -> None:
        """Reject unsupported request features with the registry-wide
        typed error."""
        if request.max_hops is not None and not self.supports_max_hops:
            from ..errors import InvalidMethodError
            from .registry import methods_supporting_max_hops

            raise InvalidMethodError(
                self.name,
                methods_supporting_max_hops(),
                feature="max_hops",
            )

    @abc.abstractmethod
    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        """Predicted wall-clock seconds for this batch (planner hook).

        These are crude calibrated models — their job is ranking the
        portfolio on a given subgraph shape, not absolute accuracy; the
        ``planner.cost_error_seconds`` histogram tracks how wrong they
        are in practice so the constants can be tuned against regret.
        """

    @abc.abstractmethod
    def estimate(self, request: EstimateRequest) -> VerificationReport:
        """Verify the candidate batch.

        Implementations must honour the request's budget clock by
        degrading (never raising) and must set ``report.estimator`` to
        the estimator that actually produced the answer (fallbacks
        re-point it).
        """
