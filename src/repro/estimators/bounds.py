"""Lower-bound estimators: the paper's ``lb`` and the ``lb+`` packing
variant, refactored behind the :class:`~repro.estimators.base.Estimator`
interface.

Both delegate to the existing verifiers with *identical* call sequences,
so answers (and random-stream consumption — there is none) are
byte-for-byte what the pre-portfolio engine produced.
"""

from __future__ import annotations

from ..core.verification import (
    VerificationReport,
    packing_bounds,
    verify_lower_bound_report,
)
from ..resilience.budget import CONFIRMED, REJECTED
from .base import EstimateRequest, Estimator, expired_report
from .stats import SubgraphStats

__all__ = ["LowerBoundEstimator", "PackingEstimator"]

#: Seconds per (node + arc) of one bulk multi-source Dijkstra pass on
#: the candidate subgraph — crude, tuned on the bench workloads.
_DIJKSTRA_UNIT = 1.2e-6


class LowerBoundEstimator(Estimator):
    """RQ-tree-LB (paper Section 5.1): most-likely-path lower bound.

    Perfect precision, no sampling; one bulk multi-source Dijkstra.
    """

    name = "lb"
    deterministic_unseeded = True
    supports_max_hops = True

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        return _DIJKSTRA_UNIT * (stats.num_nodes + stats.num_arcs) + 2e-5

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        report = verify_lower_bound_report(
            request.graph,
            request.sources,
            request.eta,
            request.candidates,
            max_hops=request.max_hops,
            budget=request.clock,
        )
        report.estimator = self.name
        return report


class PackingEstimator(Estimator):
    """``lb+``: the edge-packing (arc-disjoint paths) lower bound.

    Still perfect precision — the packed-paths bound is certified — with
    better recall than the single-path bound, at the cost of up to
    ``max_paths`` extra Dijkstra runs per undecided candidate.  The
    packing pass has no incremental result to salvage, so the budget is
    honoured at phase granularity (an expired clock skips the pass).
    """

    name = "lb+"
    deterministic_unseeded = True
    supports_max_hops = False

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        # Bulk single-path pass plus a few per-candidate Dijkstras.
        bulk = _DIJKSTRA_UNIT * (stats.num_nodes + stats.num_arcs)
        return bulk * 4.0 + 2e-5

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        clock = request.clock
        if clock is not None and clock.expired():
            report = expired_report(
                request.sources,
                request.candidates,
                "deadline expired before verification",
            )
            report.estimator = self.name
            return report
        answer, bounds = packing_bounds(
            request.graph, request.sources, request.eta, request.candidates
        )
        report = VerificationReport(
            kept=answer,
            statuses={
                node: (CONFIRMED if node in answer else REJECTED)
                for node in request.candidates
            },
            estimates=bounds,
        )
        report.estimator = self.name
        return report
