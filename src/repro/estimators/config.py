"""Tunables for the estimator portfolio and the query planner.

One frozen dataclass so a whole engine (or a single
:class:`~repro.estimators.base.EstimateRequest`) can carry a coherent
set of caps and thresholds.  Every knob has a documented default; tests
exercise the edges by constructing configs directly (e.g. a
``exact_width_cap=0`` config forces the exact estimator's sampling
fallback).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PortfolioConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class PortfolioConfig:
    """Caps and thresholds shared by the estimators and the planner."""

    #: Maximum greedy-elimination width for which the exact path runs.
    #: The frontier-conditioning state count grows exponentially with
    #: the width, so this is the knob that bounds worst-case exact
    #: latency.  Measured on sparse digraphs: width <= 4 stays in the
    #: low milliseconds, width 5+ can reach seconds.
    exact_width_cap: int = 4

    #: Node / arc caps on the candidate subgraph for the exact path (and
    #: for bothering to probe its treewidth at all — elimination itself
    #: costs O(n * deg^2)).
    exact_node_cap: int = 30
    exact_arc_cap: int = 64

    #: Hard cap on distinct frontier states the exact computation may
    #: expand before aborting into the seeded sampling fallback.  The
    #: width probe is a prediction; this is the in-flight guarantee.
    exact_state_cap: int = 20000

    #: Run the (more careful, more expensive) min-fill elimination probe
    #: only on subgraphs at most this large; min-degree always runs.
    min_fill_node_cap: int = 64

    #: Number of pivot arcs RSS stratifies on (2^r strata).
    rss_pivots: int = 3

    #: RSS is preferred by the planner when the pivot arcs carry at
    #: least this share of the total arc-probability variance and the
    #: subgraph is below :attr:`rss_node_cap`.
    rss_concentration: float = 0.6
    rss_node_cap: int = 512

    #: Slabs the lazy estimator splits its batch into when a budget
    #: clock is present (deadline checks between slabs).
    lazy_slabs: int = 4

    #: The planner picks exact over the cheapest sampler as long as its
    #: predicted cost is within this multiple — zero variance is worth a
    #: modest premium.
    exact_cost_bias: float = 1.5


#: Shared default instance (the config is frozen, so sharing is safe).
DEFAULT_CONFIG = PortfolioConfig()
