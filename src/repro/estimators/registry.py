"""The estimator registry — one authoritative name→strategy map.

Every ``method=`` surface (engine, detection helpers, serving layer,
sharded gateway, CLI) resolves names here, so the accepted set and its
error message can never drift between layers again
(:class:`repro.errors.InvalidMethodError` carries the registry's list).

``"auto"`` is a pseudo-method handled by the
:class:`~repro.estimators.planner.QueryPlanner`, not an estimator; it
appears in :func:`available_methods` because it is a valid ``method=``
value everywhere.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..errors import InvalidMethodError
from .base import Estimator

__all__ = [
    "AUTO",
    "register",
    "get_estimator",
    "available_methods",
    "sampling_methods",
    "methods_supporting_max_hops",
    "validate_method",
    "is_cacheable",
]

#: The planner pseudo-method.
AUTO = "auto"

_REGISTRY: "OrderedDict[str, Estimator]" = OrderedDict()


def register(estimator: Estimator) -> Estimator:
    """Add (or replace) an estimator under its ``name``."""
    if not estimator.name:
        raise ValueError("estimator must define a non-empty name")
    _REGISTRY[estimator.name] = estimator
    return estimator


def available_methods(include_auto: bool = True) -> Tuple[str, ...]:
    """Every accepted ``method=`` value, in registration order."""
    names = tuple(_REGISTRY)
    return ((AUTO,) + names) if include_auto else names


def sampling_methods() -> Tuple[str, ...]:
    """Registered estimators that consume sampled worlds."""
    return tuple(
        name for name, est in _REGISTRY.items() if est.samples_worlds
    )


def methods_supporting_max_hops(include_auto: bool = True) -> Tuple[str, ...]:
    """Methods accepting the distance-constrained variant.  ``"auto"``
    qualifies: the planner restricts itself to supporting estimators."""
    names = tuple(
        name for name, est in _REGISTRY.items() if est.supports_max_hops
    )
    return ((AUTO,) + names) if include_auto else names


def get_estimator(name: str) -> Estimator:
    """Look up a registered estimator, or raise the typed error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidMethodError(name, available_methods()) from None


def validate_method(method: str, max_hops: Optional[int] = None) -> None:
    """Shared front-door validation for every ``method=`` surface.

    Raises :class:`~repro.errors.InvalidMethodError` for unknown names
    and for method/feature combinations the chosen estimator rejects
    (currently ``max_hops``).
    """
    if method == AUTO:
        return
    estimator = get_estimator(method)
    if max_hops is not None and not estimator.supports_max_hops:
        raise InvalidMethodError(
            method, methods_supporting_max_hops(), feature="max_hops"
        )


def is_cacheable(method: str, seed: Optional[int]) -> bool:
    """Whether two identical queries are guaranteed identical answers.

    Deterministic estimators (``lb`` / ``lb+`` / ``exact`` — no random
    stream at all) are always cacheable; sampling estimators only under
    an explicit seed.  ``"auto"`` requires a seed: the *decision* is
    deterministic, but the chosen estimator may sample.  Unknown
    methods are simply not cacheable — the engine raises on them
    downstream.
    """
    if method == AUTO:
        return seed is not None
    estimator = _REGISTRY.get(method)
    if estimator is None:
        return False
    return estimator.is_deterministic(seed)


def _register_defaults() -> None:
    from .bounds import LowerBoundEstimator, PackingEstimator
    from .exactdp import ExactEstimator
    from .lazy import LazySharingEstimator
    from .montecarlo import MonteCarloEstimator
    from .rss import RecursiveStratifiedEstimator

    register(LowerBoundEstimator())
    register(PackingEstimator())
    register(MonteCarloEstimator())
    register(RecursiveStratifiedEstimator())
    register(LazySharingEstimator())
    register(ExactEstimator())


_register_defaults()
