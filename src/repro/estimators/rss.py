"""Recursive stratified sampling estimator (``method="rss"``).

Classic variance reduction for network reliability (Fishman; surveyed
by "An In-Depth Comparison of s-t Reliability Algorithms over Uncertain
Graphs", PAPERS.md): pick the ``r`` highest-variance arcs of the
candidate subgraph as *pivots*, partition the possible-world space into
the ``2^r`` strata fixing each pivot present/absent, and sample each
stratum *conditionally* — pivot arcs forced present become certain
(``p = 1``), forced absent are removed — with the world budget
allocated proportionally to the stratum weights
``w_s = prod(p_i or 1-p_i)``.

The combined estimator ``R(t) = sum_s w_s * freq_s(t)`` is unbiased
(law of total probability) and has strictly lower variance than crude
MC whenever the pivots carry real variance: within each stratum the
pivot coins no longer contribute any.

Per-stratum streams are seeded through :func:`repro.seeding.derive_seed`
(``derive_seed(seed, "estimators.rss", stratum_index)``) so the whole
estimate is deterministic per seed, independent of stratum execution
order.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..core.verification import (
    _ETA_SLACK,
    VerificationReport,
    _check,
    _verification_subset,
)
from ..graph.sampling import ReachabilityFrequencyEstimator
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import CONFIRMED, REJECTED, UNVERIFIED
from ..seeding import derive_seed
from .base import EstimateRequest, Estimator, expired_report
from .montecarlo import predicted_sampling_seconds
from .stats import SubgraphStats

__all__ = ["RecursiveStratifiedEstimator"]


def _allocate(total: int, weights: List[float]) -> List[int]:
    """Deterministic largest-remainder allocation of *total* worlds.

    Every positive-weight stratum gets at least one world (a stratum
    with zero samples would bias the combined estimate by its full
    weight).
    """
    shares = [total * w for w in weights]
    counts = [int(share) for share in shares]
    leftovers = sorted(
        range(len(weights)),
        key=lambda i: (-(shares[i] - counts[i]), i),
    )
    missing = total - sum(counts)
    for i in leftovers[:missing]:
        counts[i] += 1
    return [max(1, c) if w > 0.0 else 0 for c, w in zip(counts, weights)]


class RecursiveStratifiedEstimator(Estimator):
    """Stratified possible-world sampling over high-variance pivot arcs."""

    name = "rss"
    samples_worlds = True
    supports_max_hops = True

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        strata = 2 ** min(request.config.rss_pivots, 8)
        # Sampling work matches plain MC plus per-stratum subgraph
        # builds and estimator setup.
        overhead = strata * (3e-6 * (stats.num_arcs + 1) + 3e-5)
        return predicted_sampling_seconds(stats, request) * 1.05 + overhead

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        source_set = _check(request.eta, request.sources)
        if request.num_samples <= 0:
            raise ValueError(
                f"num_samples must be positive, got {request.num_samples}"
            )
        clock = request.clock
        if clock is not None and clock.expired():
            report = expired_report(
                request.sources,
                request.candidates,
                "deadline expired before verification",
            )
            report.estimator = self.name
            return report
        subset, dropped = _verification_subset(
            source_set, request.candidates, clock
        )
        statuses: Dict[int, str] = {node: UNVERIFIED for node in dropped}
        present_sources = sorted(source_set & subset)
        cutoff = request.eta * (1.0 - _ETA_SLACK)

        sub, relabel = request.graph.subgraph(subset).materialize()
        sub_sources = sorted(relabel[s] for s in present_sources)
        arcs = list(sub.arcs())
        # Pivots: highest-variance arcs, deterministic tie-break.
        by_variance = sorted(
            (a for a in arcs if 0.0 < a[2] < 1.0),
            key=lambda a: (-(a[2] * (1.0 - a[2])), a[0], a[1]),
        )
        pivots = by_variance[: max(0, request.config.rss_pivots)]
        pivot_keys = {(u, v) for u, v, _ in pivots}

        worlds = request.num_samples
        if clock is not None and clock.budget.max_worlds is not None:
            worlds = min(worlds, clock.budget.max_worlds)

        assignments = list(
            itertools.product((True, False), repeat=len(pivots))
        )
        weights = []
        for assignment in assignments:
            w = 1.0
            for (u, v, p), present in zip(pivots, assignment):
                w *= p if present else (1.0 - p)
            weights.append(w)
        allocation = _allocate(worlds, weights)

        totals: Dict[int, float] = {}
        processed_weight = 0.0
        worlds_used = 0
        fallbacks = 0
        degraded_reason: Optional[str] = None
        for index, (assignment, weight, quota) in enumerate(
            zip(assignments, weights, allocation)
        ):
            if quota <= 0:
                continue
            if index > 0 and clock is not None and clock.expired():
                degraded_reason = (
                    "deadline expired during stratified sampling "
                    f"({index}/{len(assignments)} strata)"
                )
                break
            stratum = self._stratum_graph(sub, arcs, pivot_keys,
                                          pivots, assignment)
            child_seed = (
                None
                if request.seed is None
                else derive_seed(request.seed, "estimators.rss", index)
            )
            estimator = ReachabilityFrequencyEstimator(
                stratum,
                sub_sources,
                seed=child_seed,
                max_hops=request.max_hops,
                backend=request.backend,
            )
            estimator.run(quota)
            fallbacks += estimator.fallbacks
            worlds_used += quota
            for node, count in estimator.counts().items():
                totals[node] = totals.get(node, 0.0) + weight * count / quota
            processed_weight += weight

        estimates: Dict[int, float] = {}
        if processed_weight > 0.0:
            inverse = {new: old for old, new in relabel.items()}
            for node, value in totals.items():
                estimates[inverse[node]] = value / processed_weight
        for node in subset:
            if processed_weight <= 0.0:
                statuses[node] = (
                    CONFIRMED if node in source_set else UNVERIFIED
                )
            else:
                statuses[node] = (
                    CONFIRMED
                    if estimates.get(node, 0.0) >= cutoff
                    else REJECTED
                )
        for node in present_sources:
            statuses[node] = CONFIRMED
        if dropped and degraded_reason is None:
            degraded_reason = (
                "candidate-subgraph cap left candidates unverified"
            )
        report = VerificationReport(
            kept={n for n, s in statuses.items() if s == CONFIRMED},
            statuses=statuses,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            worlds_used=worlds_used,
            backend_fallbacks=fallbacks,
            estimates=estimates,
        )
        report.estimator = self.name
        return report

    @staticmethod
    def _stratum_graph(
        sub: UncertainGraph,
        arcs: List[Tuple[int, int, float]],
        pivot_keys,
        pivots,
        assignment,
    ) -> UncertainGraph:
        """The conditional subgraph of one stratum: forced-present pivots
        become certain arcs, forced-absent pivots disappear."""
        forced = {
            (u, v): present
            for (u, v, _), present in zip(pivots, assignment)
        }
        stratum = UncertainGraph(sub.num_nodes)
        for u, v, p in arcs:
            if (u, v) in forced:
                if forced[(u, v)]:
                    stratum.add_arc(u, v, 1.0)
            else:
                stratum.add_arc(u, v, p)
        return stratum
