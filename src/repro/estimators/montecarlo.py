"""The chunked Monte-Carlo estimator (paper Section 5.2) behind the
portfolio interface.

Delegates to :func:`repro.core.verification.verify_sampling_report`
with an identical call sequence, so the random stream is consumed
exactly as the pre-portfolio engine consumed it: unbudgeted runs are
one ``estimator.run(K)`` call, budgeted runs chunk with Wilson-interval
early stopping.  This is the only estimator that consumes a shared
``coin_source`` (cross-query world batching).
"""

from __future__ import annotations

from ..accel import resolve_backend
from ..core.verification import VerificationReport, verify_sampling_report
from .base import EstimateRequest, Estimator
from .stats import SubgraphStats

__all__ = ["MonteCarloEstimator", "predicted_sampling_seconds"]

#: Per-(node+arc)-per-world cost of the pure-python per-world BFS.
_PY_WORLD_UNIT = 3.5e-7
#: Per-arc-per-world cost of the packed numpy kernel, plus fixed setup.
_NP_WORLD_UNIT = 1.6e-9
_NP_SETUP = 2.5e-4


def predicted_sampling_seconds(
    stats: SubgraphStats, request: EstimateRequest
) -> float:
    """Shared cost model for the per-world sampling estimators."""
    worlds = request.num_samples
    if stats.max_worlds is not None:
        worlds = min(worlds, stats.max_worlds)
    try:
        backend = resolve_backend(request.backend, stats.num_nodes)
    except Exception:
        backend = "python"
    work = stats.num_nodes + stats.num_arcs
    if backend == "numpy":
        return _NP_WORLD_UNIT * work * worlds + _NP_SETUP
    return _PY_WORLD_UNIT * work * worlds + 2e-5


class MonteCarloEstimator(Estimator):
    """RQ-tree-MC: independent per-world sampling with Wilson stopping
    under a budget."""

    name = "mc"
    samples_worlds = True
    supports_max_hops = True
    supports_coin_source = True

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        return predicted_sampling_seconds(stats, request)

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        report = verify_sampling_report(
            request.graph,
            request.sources,
            request.eta,
            request.candidates,
            num_samples=request.num_samples,
            seed=request.seed,
            max_hops=request.max_hops,
            backend=request.backend,
            budget=request.clock,
            coin_source=request.coin_source,
        )
        report.estimator = self.name
        return report
