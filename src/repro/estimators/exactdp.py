"""Exact estimator (``method="exact"``): zero-variance answers on
small-treewidth candidate subgraphs.

Post-filtering candidate subgraphs are often tiny ("An Efficient
Algorithm for Computing Network Reliability in Small Treewidth",
PAPERS.md), so exact computation beats sampling outright there.  The
pipeline:

1. probe the candidate subgraph's treewidth with greedy
   min-degree/min-fill elimination (:mod:`repro.estimators.stats`);
2. when the width (and node/arc counts) fit the configured caps, run
   frontier conditioning: condition only on arcs *leaving the current
   reached set*, so every recursion state is a (reached set, deleted
   boundary arcs) pair and a single traversal yields the exact
   reliability of **every** candidate at once.  States are memoised —
   deleted arcs whose head has since been absorbed are dropped from the
   key, which merges converging branches — and the state count tracks
   the subgraph's cut structure, i.e. its width;
3. past any cap — including the in-flight ``exact_state_cap`` guard,
   which can trip mid-computation when the width probe was too
   optimistic — fall back to the chunked-MC estimator under a seed
   derived from the query seed (``derive_seed(seed or 0, "estimators",
   "exact-fallback")``) so an explicit ``method="exact"`` stays
   deterministic — and therefore cacheable — even when it cannot be
   exact.

Answers are certified lower bounds of the whole-graph reliability
(the candidate-induced subgraph only removes paths), zero-variance, and
need no Wilson stopping: ``worlds_used`` is 0 and every decided status
is final.  The traversal visits arcs in sorted order, so results are
bit-identical across processes and shard layouts given the same
candidate subgraph.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.verification import (
    _ETA_SLACK,
    VerificationReport,
    _check,
    _verification_subset,
)
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import CONFIRMED, REJECTED, UNVERIFIED, BudgetClock
from ..seeding import derive_seed
from .base import EstimateRequest, Estimator, expired_report
from .montecarlo import MonteCarloEstimator
from .stats import SubgraphStats, treewidth_upper_bound

__all__ = ["ExactEstimator"]

#: Per-expanded-state cost of the frontier traversal (python dicts of
#: per-target marginals dominate).
_STATE_UNIT = 2e-5

#: Check the budget clock every this many expanded states.
_CLOCK_STRIDE = 256


class _Abort(Exception):
    """Raised inside the frontier traversal when a guard trips."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


def _reach_all(
    graph: UncertainGraph,
    sources: FrozenSet[int],
    state_cap: int,
    clock: Optional[BudgetClock],
) -> Dict[int, float]:
    """Exact reachability probability of every node from *sources*.

    Frontier conditioning: repeatedly pick the lowest undecided arc
    leaving the reached set; branch on its presence.  A state's future
    depends only on the reached set and the deleted arcs still on its
    boundary, so memoising on that pair merges converging branches.
    Raises :class:`_Abort` when *state_cap* is exceeded or *clock*
    expires.
    """
    arcs_from: Dict[int, List[Tuple[int, float, int]]] = {}
    arc_id = 0
    for u, v, p in sorted(graph.arcs()):
        arcs_from.setdefault(u, []).append((v, p, arc_id))
        arc_id += 1
    memo: Dict[
        Tuple[FrozenSet[int], FrozenSet[int]], Dict[int, float]
    ] = {}
    expanded = 0

    def solve(
        reached: FrozenSet[int], deleted: FrozenSet[int]
    ) -> Dict[int, float]:
        nonlocal expanded
        key = (reached, deleted)
        cached = memo.get(key)
        if cached is not None:
            return cached
        expanded += 1
        if expanded > state_cap:
            raise _Abort(
                f"state budget {state_cap} exceeded mid-computation"
            )
        if (
            clock is not None
            and expanded % _CLOCK_STRIDE == 0
            and clock.expired()
        ):
            raise _Abort("deadline expired during exact verification")
        arc = None
        for u in sorted(reached):
            for entry in arcs_from.get(u, ()):
                if entry[0] not in reached and entry[2] not in deleted:
                    arc = (u,) + entry
                    break
            if arc is not None:
                break
        if arc is None:
            result = {node: 1.0 for node in reached}
        else:
            _, head, prob, aid = arc
            absent = solve(reached, deleted | {aid})
            grown = reached | {head}
            # Deleted arcs whose head was just absorbed no longer
            # constrain the future; dropping them merges states.
            relevant = frozenset(
                entry[2]
                for u in grown
                for entry in arcs_from.get(u, ())
                if entry[2] in deleted and entry[0] not in grown
            )
            present = solve(grown, relevant)
            result = {}
            complement = 1.0 - prob
            for node, value in absent.items():
                result[node] = complement * value
            for node, value in present.items():
                result[node] = result.get(node, 0.0) + prob * value
        memo[key] = result
        return result

    return solve(sources, frozenset())


class ExactEstimator(Estimator):
    """Treewidth-gated exact verification with a deterministic sampling
    fallback."""

    name = "exact"
    deterministic_unseeded = True
    exact = True
    supports_max_hops = False

    def cost(self, stats: SubgraphStats, request: EstimateRequest) -> float:
        config = request.config
        width = stats.treewidth_estimate
        if (
            width is None
            or width > config.exact_width_cap
            or stats.num_nodes > config.exact_node_cap
            or stats.num_arcs > config.exact_arc_cap
        ):
            return math.inf
        predicted_states = min(
            float(config.exact_state_cap),
            (stats.num_arcs + 1.0) * (2.0 ** min(width, 16)),
        )
        return _STATE_UNIT * predicted_states + 5e-5

    def estimate(self, request: EstimateRequest) -> VerificationReport:
        source_set = _check(request.eta, request.sources)
        self.validate(request)
        clock = request.clock
        if clock is not None and clock.expired():
            report = expired_report(
                request.sources,
                request.candidates,
                "deadline expired before verification",
            )
            report.estimator = self.name
            return report
        subset, dropped = _verification_subset(
            source_set, request.candidates, clock
        )
        config = request.config
        num_arcs = sum(
            1
            for u in subset
            for v in request.graph.successors(u)
            if v in subset
        )
        width: Optional[int] = None
        if (
            len(subset) <= config.exact_node_cap
            and num_arcs <= config.exact_arc_cap
        ):
            width = treewidth_upper_bound(
                request.graph,
                subset,
                abort_above=config.exact_width_cap,
                min_fill_node_cap=config.min_fill_node_cap,
            )
        if width is None or width > config.exact_width_cap:
            return self._fallback(
                request, self._cap_reason(config, width, len(subset), num_arcs)
            )

        sub, relabel = request.graph.subgraph(subset).materialize()
        present_sources = frozenset(
            relabel[s] for s in source_set if s in relabel
        )
        if present_sources:
            try:
                reached = _reach_all(
                    sub, present_sources, config.exact_state_cap, clock
                )
            except _Abort as abort:
                return self._fallback(request, abort.reason)
        else:
            reached = {}
        cutoff = request.eta * (1.0 - _ETA_SLACK)
        statuses: Dict[int, str] = {node: UNVERIFIED for node in dropped}
        estimates: Dict[int, float] = {}
        for node in sorted(subset):
            if node in source_set:
                statuses[node] = CONFIRMED
                estimates[node] = 1.0
                continue
            reliability = reached.get(relabel[node], 0.0)
            estimates[node] = reliability
            statuses[node] = (
                CONFIRMED if reliability >= cutoff else REJECTED
            )
        degraded_reason: Optional[str] = None
        if dropped:
            degraded_reason = (
                "candidate-subgraph cap left candidates unverified"
            )
        report = VerificationReport(
            kept={n for n, s in statuses.items() if s == CONFIRMED},
            statuses=statuses,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            estimates=estimates,
        )
        report.estimator = self.name
        return report

    @staticmethod
    def _cap_reason(
        config, width: Optional[int], num_nodes: int, num_arcs: int
    ) -> str:
        if width is None:
            return (
                f"subgraph too large to probe (n={num_nodes} "
                f"arcs={num_arcs} vs caps {config.exact_node_cap}/"
                f"{config.exact_arc_cap})"
            )
        return (
            f"treewidth estimate {width} exceeds cap "
            f"{config.exact_width_cap}"
        )

    def _fallback(
        self, request: EstimateRequest, why: str
    ) -> VerificationReport:
        """Deterministic chunked-MC fallback past the exactness caps."""
        from ..service.metrics import get_registry

        get_registry().counter("planner.exact_fallbacks").inc()
        fallback_seed = derive_seed(
            request.seed if request.seed is not None else 0,
            "estimators",
            "exact-fallback",
        )
        report = MonteCarloEstimator().estimate(
            request.with_(seed=fallback_seed, coin_source=None)
        )
        report.estimator = MonteCarloEstimator.name
        report.notes = f"exact fallback: {why}; ran seeded mc instead"
        return report
