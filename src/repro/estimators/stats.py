"""Candidate-subgraph statistics and treewidth estimation.

The planner's decisions are driven by cheap, deterministic statistics of
the candidate-induced subgraph: node/arc counts, density, how
concentrated the arc-probability variance is (RSS pays off when a few
arcs dominate), and a greedy upper bound on treewidth (the exact path is
feasible exactly when this is small).

Treewidth is estimated by greedy elimination — eliminate vertices one at
a time, connecting the neighbours of each eliminated vertex into a
clique; the width of the ordering is the largest neighbourhood size at
elimination time, and any ordering's width upper-bounds the true
treewidth.  Two classic orderings are tried: **min-degree** (always) and
**min-fill** (on small subgraphs; better widths, costlier to compute),
and the smaller width wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from ..graph.uncertain import UncertainGraph

__all__ = [
    "SubgraphStats",
    "collect_stats",
    "treewidth_upper_bound",
    "elimination_order",
]


@dataclass(frozen=True)
class SubgraphStats:
    """Deterministic summary of one candidate-induced subgraph."""

    num_nodes: int
    num_arcs: int
    #: Arc count over the maximum possible (directed, no self-loops).
    density: float
    #: Share of total arc-probability variance carried by the top
    #: ``rss_pivots`` arcs (0.0 when there are no arcs).
    variance_concentration: float
    #: Greedy-elimination treewidth upper bound, or ``None`` when the
    #: subgraph exceeded the probe caps (too big for exact anyway).
    treewidth_estimate: Optional[int]
    #: Sources present in the candidate set.
    sources_in_candidates: int
    #: Budget context at planning time (``None`` = unbudgeted).
    remaining_seconds: Optional[float] = None
    max_worlds: Optional[int] = None


def _undirected_adjacency(
    graph: UncertainGraph, members: Set[int]
) -> Dict[int, Set[int]]:
    """Undirected view of the induced subgraph (treewidth ignores
    direction)."""
    adjacency: Dict[int, Set[int]] = {node: set() for node in members}
    for u in members:
        for v in graph.successors(u):
            if v in members and v != u:
                adjacency[u].add(v)
                adjacency[v].add(u)
    return adjacency


def _eliminate(
    adjacency: Dict[int, Set[int]], use_min_fill: bool, abort_above: int
) -> Tuple[int, list]:
    """Width and vertex order of one greedy elimination.

    Mutates a private copy of *adjacency*.  Width is monotone
    non-decreasing in the running maximum, so the search aborts as soon
    as it exceeds *abort_above* (returning ``abort_above + 1`` and the
    partial order) — width callers only care whether the bound beats
    their cap.
    """
    adj = {node: set(neighbours) for node, neighbours in adjacency.items()}
    width = 0
    order: list = []
    while adj:
        best_node = None
        best_key: Tuple[int, int] = (0, 0)
        for node in sorted(adj):
            degree = len(adj[node])
            if use_min_fill:
                neighbours = adj[node]
                fill = sum(
                    1
                    for a in neighbours
                    for b in neighbours
                    if a < b and b not in adj[a]
                )
                key = (fill, degree)
            else:
                key = (degree, 0)
            if best_node is None or key < best_key:
                best_node, best_key = node, key
        neighbours = adj.pop(best_node)
        order.append(best_node)
        width = max(width, len(neighbours))
        if width > abort_above:
            return abort_above + 1, order
        for a in neighbours:
            adj[a].discard(best_node)
            for b in neighbours:
                if a != b:
                    adj[a].add(b)
    return width, order


def treewidth_upper_bound(
    graph: UncertainGraph,
    members: Iterable[int],
    abort_above: int = 64,
    min_fill_node_cap: int = 64,
) -> int:
    """Greedy treewidth upper bound of the induced undirected subgraph.

    Returns ``min(min-degree width, min-fill width)``; min-fill is only
    attempted when the subgraph has at most *min_fill_node_cap* nodes.
    A return value of ``abort_above + 1`` means "exceeds the cap" (both
    orderings aborted early).
    """
    member_set = set(members)
    if not member_set:
        return 0
    adjacency = _undirected_adjacency(graph, member_set)
    width, _ = _eliminate(adjacency, use_min_fill=False,
                          abort_above=abort_above)
    if width > 0 and len(member_set) <= min_fill_node_cap:
        fill_width, _ = _eliminate(adjacency, use_min_fill=True,
                                   abort_above=abort_above)
        width = min(width, fill_width)
    return width


def elimination_order(
    graph: UncertainGraph, members: Iterable[int]
) -> Tuple[int, list]:
    """Min-degree elimination ``(width, vertex order)`` of the induced
    undirected subgraph.

    The exact estimator conditions on arcs in this order: arcs incident
    to early-eliminated (low-degree) vertices are decided first, which
    keeps the factoring recursion's undecided frontier as narrow as the
    elimination width.
    """
    member_set = set(members)
    if not member_set:
        return 0, []
    adjacency = _undirected_adjacency(graph, member_set)
    return _eliminate(
        adjacency, use_min_fill=False, abort_above=len(member_set) + 1
    )


def collect_stats(
    graph: UncertainGraph,
    candidates: Set[int],
    sources: Iterable[int],
    rss_pivots: int = 3,
    probe_node_cap: int = 160,
    probe_arc_cap: int = 420,
    width_abort_above: int = 64,
    min_fill_node_cap: int = 64,
    remaining_seconds: Optional[float] = None,
    max_worlds: Optional[int] = None,
) -> SubgraphStats:
    """Compute :class:`SubgraphStats` in one pass over the induced arcs.

    The treewidth probe only runs when the subgraph fits the probe caps;
    larger subgraphs report ``treewidth_estimate=None`` (the exact path
    is off the table for them regardless).
    """
    n = len(candidates)
    num_arcs = 0
    variances = []
    for u in candidates:
        for v, p in graph.successors(u).items():
            if v in candidates:
                num_arcs += 1
                variances.append(p * (1.0 - p))
    density = num_arcs / (n * (n - 1)) if n > 1 else 0.0
    total_variance = sum(variances)
    if total_variance > 0.0 and rss_pivots > 0:
        variances.sort(reverse=True)
        concentration = sum(variances[:rss_pivots]) / total_variance
    else:
        concentration = 0.0
    width: Optional[int] = None
    if n <= probe_node_cap and num_arcs <= probe_arc_cap:
        width = treewidth_upper_bound(
            graph,
            candidates,
            abort_above=width_abort_above,
            min_fill_node_cap=min_fill_node_cap,
        )
    return SubgraphStats(
        num_nodes=n,
        num_arcs=num_arcs,
        density=density,
        variance_concentration=concentration,
        treewidth_estimate=width,
        sources_in_candidates=len(set(sources) & candidates),
        remaining_seconds=remaining_seconds,
        max_worlds=max_worlds,
    )
