"""Reverse-influence sampling (RIS) for influence maximization.

An extension beyond the paper: the paper's Section 7.7 accelerates the
2003-era Greedy+MC pipeline with the RQ-tree; the modern alternative
(Borgs et al. 2014, "Maximizing social influence in nearly optimal
time") replaces forward spread estimation entirely with **reverse
reachable (RR) sets**:

1. pick a uniformly random node ``v`` and a random possible world;
2. record the set of nodes that reach ``v`` in that world (one reverse
   lazy BFS — the same possible-world machinery the rest of this
   library uses, run on the reversed graph);
3. repeat ``theta`` times; then a seed set covering a ``c`` fraction of
   the RR sets has expected spread ``≈ c * n``.

Greedy maximum coverage over the RR sets then yields a
``(1 - 1/e - ε)`` approximation with high probability.  Including RIS
lets the benchmarks situate the paper's approach against the method
that superseded MC-Greedy, and gives the library a production-grade IM
algorithm.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.uncertain import UncertainGraph

__all__ = ["RRSketch", "build_rr_sketch", "ris_influence_maximization"]


def _reverse_reachable_set(
    graph: UncertainGraph, target: int, rng: random.Random
) -> Set[int]:
    """Nodes that reach *target* in one lazily-sampled world.

    A lazy BFS over *incoming* arcs: arc ``(u, v)`` is flipped when the
    walk first reaches ``v``, exactly mirroring the forward sampler
    (each arc considered at most once per world, so the distribution is
    the possible-world one).
    """
    visited = {target}
    queue: deque = deque([target])
    rng_random = rng.random
    while queue:
        v = queue.popleft()
        for u, p in graph.predecessors(v).items():
            if u not in visited and rng_random() < p:
                visited.add(u)
                queue.append(u)
    return visited


@dataclass
class RRSketch:
    """A collection of reverse-reachable sets over an uncertain graph.

    ``spread_estimate(S) = n * (#RR sets hit by S) / #RR sets`` is an
    unbiased estimator of the expected spread ``σ(S)`` (each RR set is
    an unbiased membership test of "does S influence a random node in a
    random world").
    """

    num_nodes: int
    rr_sets: List[FrozenSet[int]] = field(default_factory=list)
    #: inverted index: node -> indices of RR sets containing it
    membership: Dict[int, List[int]] = field(default_factory=dict)

    def add(self, rr_set: Set[int]) -> None:
        """Append one RR set and index its members."""
        index = len(self.rr_sets)
        self.rr_sets.append(frozenset(rr_set))
        for node in rr_set:
            self.membership.setdefault(node, []).append(index)

    @property
    def size(self) -> int:
        """Number of RR sets in the sketch."""
        return len(self.rr_sets)

    def spread_estimate(self, seeds: Sequence[int]) -> float:
        """Unbiased estimate of the expected spread of *seeds*."""
        if not self.rr_sets:
            return 0.0
        covered: Set[int] = set()
        for seed in seeds:
            covered.update(self.membership.get(seed, ()))
        return self.num_nodes * len(covered) / len(self.rr_sets)


def build_rr_sketch(
    graph: UncertainGraph,
    num_sets: int,
    seed: Optional[int] = None,
) -> RRSketch:
    """Sample *num_sets* reverse-reachable sets."""
    if num_sets <= 0:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    if graph.num_nodes == 0:
        raise ValueError("cannot sketch an empty graph")
    rng = random.Random(seed)
    sketch = RRSketch(num_nodes=graph.num_nodes)
    for _ in range(num_sets):
        target = rng.randrange(graph.num_nodes)
        sketch.add(_reverse_reachable_set(graph, target, rng))
    return sketch


def ris_influence_maximization(
    graph: UncertainGraph,
    k: int,
    num_sets: int = 10000,
    seed: Optional[int] = None,
    sketch: Optional[RRSketch] = None,
) -> Tuple[List[int], float]:
    """Select *k* seeds by greedy maximum coverage over RR sets.

    Returns ``(seeds, estimated_spread)``.  Pass a prebuilt *sketch* to
    amortize sampling across calls (e.g. different ``k``).

    The greedy cover uses lazy bucket updates: each chosen seed marks
    its RR sets as covered, and other nodes' counts are corrected on
    demand — ``O(Σ |RR|)`` total, the standard implementation.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if sketch is None:
        sketch = build_rr_sketch(graph, num_sets, seed=seed)
    covered = [False] * sketch.size
    # Live coverage counts per node (degree in the node/RR-set bipartite
    # incidence, decremented as sets get covered).
    counts: Dict[int, int] = {
        node: len(indices) for node, indices in sketch.membership.items()
    }
    seeds: List[int] = []
    for _ in range(min(k, graph.num_nodes)):
        if not counts:
            break
        best = max(counts, key=lambda node: (counts[node], -node))
        if counts[best] == 0:
            break
        seeds.append(best)
        for index in sketch.membership.get(best, ()):
            if not covered[index]:
                covered[index] = True
                for member in sketch.rr_sets[index]:
                    if member in counts:
                        counts[member] -= 1
        del counts[best]
    return seeds, sketch.spread_estimate(seeds)
