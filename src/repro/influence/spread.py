"""Expected-spread estimation under the independent cascade model.

Influence maximization (paper, Section 7.7; Kempe et al. [23]) seeks a
seed set ``S`` of ``k`` nodes maximizing the expected spread

.. math::

    \\sigma(S) = \\sum_{t \\in N} R(S, t),

i.e. the expected number of nodes reachable from ``S`` in a possible
world.  Under the independent cascade model with activation
probabilities on arcs, a node's activation event is exactly the
reachability event in the uncertain graph, so spread estimation reduces
to the machinery this library already has:

* :func:`expected_spread_mc` — Monte-Carlo: average reached-set size
  over sampled worlds (the classic estimator the Greedy baseline uses);
* :func:`expected_spread_histogram` — the paper's RQ-tree shortcut: fix
  thresholds ``η_1 < ... < η_p``, measure the reliability-search answer
  sizes ``f(S, η_i) = |RS(S, η_i)|`` with RQ-tree-LB, and integrate the
  histogram (Section 7.7).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..accel import resolve_backend, sample_reach_batch
from ..core.engine import RQTreeEngine
from ..errors import EmptySourceSetError
from ..graph.sampling import sample_reachable
from ..graph.uncertain import UncertainGraph

__all__ = [
    "expected_spread_mc",
    "expected_spread_histogram",
    "DEFAULT_THRESHOLDS",
]

#: Default histogram thresholds for the RQ-tree spread estimator.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)


def expected_spread_mc(
    graph: UncertainGraph,
    seeds: Sequence[int],
    num_samples: int = 1000,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> float:
    """Monte-Carlo estimate of the expected spread ``σ(seeds)``.

    Averages the reachable-set size over *num_samples* lazily sampled
    worlds.  Unbiased; this is both the baseline Greedy's inner oracle
    and the paper's final accuracy yardstick for Figure 5.  *backend*
    selects the sampling implementation (:mod:`repro.accel`); the
    batched kernel tallies per-world reached-set sizes directly.
    """
    seed_list = list(dict.fromkeys(seeds))
    if not seed_list:
        raise EmptySourceSetError()
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if resolve_backend(backend, graph.num_nodes) == "numpy":
        import numpy

        batch = sample_reach_batch(
            graph,
            seed_list,
            num_samples,
            numpy.random.default_rng(seed),
        )
        return float(batch.world_sizes.mean())
    rng = random.Random(seed)
    total = 0
    for _ in range(num_samples):
        total += len(sample_reachable(graph, seed_list, rng))
    return total / num_samples


def expected_spread_histogram(
    engine: RQTreeEngine,
    seeds: Sequence[int],
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> float:
    """RQ-tree histogram spread estimate (paper, Section 7.7).

    With ascending thresholds ``η_1 < ... < η_p`` and answer sizes
    ``f_i = |RS(S, η_i)|`` (non-increasing in ``i``), the spread is
    approximated by the lower Riemann sum of the reliability histogram::

        σ(S) ≈ f_p η_p + (f_{p-1} - f_p) η_{p-1} + ... + (f_1 - f_2) η_1

    Each ``f_i`` is one RQ-tree-LB reliability-search query, so a spread
    evaluation costs ``p`` fast index queries instead of ``K`` graph
    samples.
    """
    seed_list = list(dict.fromkeys(seeds))
    if not seed_list:
        raise EmptySourceSetError()
    thresholds = sorted(thresholds)
    if not thresholds:
        raise ValueError("at least one threshold is required")
    sizes: List[int] = [
        len(engine.query(seed_list, eta, method="lb").nodes)
        for eta in thresholds
    ]
    spread = sizes[-1] * thresholds[-1]
    for i in range(len(thresholds) - 2, -1, -1):
        spread += max(0, sizes[i] - sizes[i + 1]) * thresholds[i]
    return spread
