"""Hill-climbing Greedy influence maximization (Kempe et al. [23]).

The expected spread ``σ(S)`` is monotone and submodular under the
independent cascade model, so the Greedy algorithm that repeatedly adds
the node with the largest marginal gain achieves a ``(1 - 1/e)``
approximation.  Evaluating marginal gains exactly is #P-complete, so
Greedy is instantiated with a spread *oracle*:

* :func:`greedy_mc` — the classic baseline: Monte-Carlo spread oracle,
  optionally accelerated with CELF lazy evaluation (Goyal et al. [17]),
  exploiting submodularity to skip most re-evaluations;
* :func:`greedy_rqtree` — the paper's Section 7.7 variant: the RQ-tree
  histogram spread oracle, turning each evaluation into a handful of
  index queries.

Both return per-iteration traces (chosen seed, oracle spread estimate,
cumulative wall time) so Figure 5 can be regenerated directly.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..core.engine import RQTreeEngine
from ..graph.uncertain import UncertainGraph
from .spread import (
    DEFAULT_THRESHOLDS,
    expected_spread_histogram,
    expected_spread_mc,
)

__all__ = ["GreedyTrace", "greedy_influence", "greedy_mc", "greedy_rqtree"]

SpreadOracle = Callable[[Sequence[int]], float]


@dataclass
class GreedyTrace:
    """Result of one Greedy run.

    ``seeds[i]`` is the ``(i+1)``-th chosen node; ``spreads[i]`` the
    oracle's spread estimate after adding it; ``seconds[i]`` cumulative
    wall time through that iteration; ``evaluations`` the total number
    of oracle calls (CELF's savings show up here).
    """

    seeds: List[int] = field(default_factory=list)
    spreads: List[float] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)
    evaluations: int = 0


def greedy_influence(
    graph: UncertainGraph,
    k: int,
    oracle: SpreadOracle,
    candidates: Optional[Sequence[int]] = None,
    use_celf: bool = True,
) -> GreedyTrace:
    """Generic Greedy hill climbing over a spread oracle.

    Parameters
    ----------
    k:
        Number of seeds to select.
    oracle:
        Maps a seed sequence to a spread estimate.  Must be monotone
        submodular (in expectation) for CELF pruning to be sound.
    candidates:
        Node pool to select from (default: all graph nodes).
    use_celf:
        Lazy-evaluation pruning: nodes are re-evaluated only when their
        stale marginal gain tops the queue, exploiting the fact that
        submodular marginal gains only shrink as the seed set grows.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    pool = list(candidates) if candidates is not None else list(graph.nodes())
    trace = GreedyTrace()
    start = time.perf_counter()
    chosen: List[int] = []
    current_spread = 0.0

    if use_celf:
        # Max-heap of (-marginal_gain, node, round_evaluated).
        heap: List[Tuple[float, int, int]] = []
        for node in pool:
            gain = oracle([node])
            trace.evaluations += 1
            heapq.heappush(heap, (-gain, node, 0))
        for _ in range(k):
            while heap:
                neg_gain, node, evaluated_at = heapq.heappop(heap)
                if evaluated_at == len(chosen):
                    # Fresh w.r.t. the current seed set: select it.
                    chosen.append(node)
                    current_spread += -neg_gain
                    break
                gain = oracle(chosen + [node]) - current_spread
                trace.evaluations += 1
                heapq.heappush(heap, (-gain, node, len(chosen)))
            else:
                break  # pool exhausted
            trace.seeds.append(chosen[-1])
            trace.spreads.append(current_spread)
            trace.seconds.append(time.perf_counter() - start)
            if len(chosen) >= k:
                break
    else:
        remaining = set(pool)
        for _ in range(k):
            best_node = None
            best_spread = -1.0
            for node in remaining:
                spread = oracle(chosen + [node])
                trace.evaluations += 1
                if spread > best_spread:
                    best_spread = spread
                    best_node = node
            if best_node is None:
                break
            chosen.append(best_node)
            remaining.discard(best_node)
            current_spread = best_spread
            trace.seeds.append(best_node)
            trace.spreads.append(current_spread)
            trace.seconds.append(time.perf_counter() - start)
    return trace


def greedy_mc(
    graph: UncertainGraph,
    k: int,
    num_samples: int = 200,
    seed: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
    use_celf: bool = True,
    backend: str = "auto",
) -> GreedyTrace:
    """Greedy with the Monte-Carlo spread oracle (the Figure 5 baseline)."""

    def oracle(seeds: Sequence[int]) -> float:
        return expected_spread_mc(
            graph, seeds, num_samples=num_samples, seed=seed, backend=backend
        )

    return greedy_influence(
        graph, k, oracle, candidates=candidates, use_celf=use_celf
    )


def greedy_rqtree(
    engine: RQTreeEngine,
    k: int,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    candidates: Optional[Sequence[int]] = None,
    use_celf: bool = True,
) -> GreedyTrace:
    """Greedy with the RQ-tree histogram oracle (paper, Section 7.7)."""

    def oracle(seeds: Sequence[int]) -> float:
        return expected_spread_histogram(engine, seeds, thresholds=thresholds)

    return greedy_influence(
        engine.graph, k, oracle, candidates=candidates, use_celf=use_celf
    )
