"""Influence maximization under the independent cascade model (§7.7)."""

from .spread import (
    expected_spread_mc,
    expected_spread_histogram,
    DEFAULT_THRESHOLDS,
)
from .greedy import GreedyTrace, greedy_influence, greedy_mc, greedy_rqtree
from .ris import RRSketch, build_rr_sketch, ris_influence_maximization

__all__ = [
    "expected_spread_mc",
    "expected_spread_histogram",
    "DEFAULT_THRESHOLDS",
    "GreedyTrace",
    "greedy_influence",
    "greedy_mc",
    "greedy_rqtree",
    "RRSketch",
    "build_rr_sketch",
    "ris_influence_maximization",
]
