"""Classic reliability-problem variants (paper, Sections 1 and 8).

The paper situates reliability search within the family of classical
*reliability-detection* problems from device-network analysis:

* **two-terminal** reliability [32] — ``R(s, t)``
  (:func:`repro.reliability.montecarlo.mc_reliability` and the RHT
  estimator already cover this);
* **k-terminal** reliability [18] — the probability that all nodes of a
  given subset are pairwise connected;
* **all-terminal** reliability [31] — k-terminal with the full node set.

This module provides Monte-Carlo estimators for the latter two on
directed uncertain graphs (pairwise connectivity = mutual reachability),
plus exponential exact versions as test oracles.  They complete the
library's coverage of the problem family and power the comparison
examples; none of them is needed by the RQ-tree itself.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import NodeNotFoundError
from ..graph.uncertain import UncertainGraph

__all__ = [
    "k_terminal_reliability",
    "all_terminal_reliability",
    "exact_k_terminal_reliability",
]


def _mutually_connected(
    adjacency: Dict[int, List[int]],
    reverse: Dict[int, List[int]],
    terminals: List[int],
) -> bool:
    """All terminals pairwise connected (mutually reachable) in a world.

    Equivalent test: the first terminal reaches every other terminal
    *and* every other terminal reaches it (reachability is transitive
    through the hub terminal).
    """
    hub = terminals[0]
    targets = set(terminals[1:])
    if not targets:
        return True

    def covers(adj: Dict[int, List[int]]) -> bool:
        remaining = set(targets)
        seen = {hub}
        queue = deque([hub])
        while queue and remaining:
            u = queue.popleft()
            for v in adj.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    remaining.discard(v)
                    queue.append(v)
        return not remaining

    return covers(adjacency) and covers(reverse)


def k_terminal_reliability(
    graph: UncertainGraph,
    terminals: Sequence[int],
    num_samples: int = 1000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo k-terminal reliability on a directed uncertain graph.

    The probability that every pair of *terminals* is mutually
    reachable in a sampled world.  Unbiased; variance shrinks as
    ``1/num_samples``.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("terminal set must be non-empty")
    for t in terminal_list:
        if t not in graph:
            raise NodeNotFoundError(t)
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if len(terminal_list) == 1:
        return 1.0
    rng = random.Random(seed)
    arcs = list(graph.arcs())
    hits = 0
    for _ in range(num_samples):
        adjacency: Dict[int, List[int]] = {}
        reverse: Dict[int, List[int]] = {}
        rng_random = rng.random
        for u, v, p in arcs:
            if rng_random() < p:
                adjacency.setdefault(u, []).append(v)
                reverse.setdefault(v, []).append(u)
        if _mutually_connected(adjacency, reverse, terminal_list):
            hits += 1
    return hits / num_samples


def all_terminal_reliability(
    graph: UncertainGraph,
    num_samples: int = 1000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo all-terminal reliability: every node pair connected."""
    if graph.num_nodes == 0:
        return 1.0
    return k_terminal_reliability(
        graph, list(graph.nodes()), num_samples=num_samples, seed=seed
    )


def exact_k_terminal_reliability(
    graph: UncertainGraph, terminals: Sequence[int]
) -> float:
    """Exact k-terminal reliability by world enumeration (<= 20 arcs)."""
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("terminal set must be non-empty")
    for t in terminal_list:
        if t not in graph:
            raise NodeNotFoundError(t)
    if len(terminal_list) == 1:
        return 1.0
    arcs = list(graph.arcs())
    if len(arcs) > 20:
        raise ValueError(
            f"exact enumeration limited to 20 arcs, graph has {len(arcs)}"
        )
    total = 0.0
    for mask in range(1 << len(arcs)):
        world_prob = 1.0
        adjacency: Dict[int, List[int]] = {}
        reverse: Dict[int, List[int]] = {}
        for i, (u, v, p) in enumerate(arcs):
            if mask >> i & 1:
                world_prob *= p
                adjacency.setdefault(u, []).append(v)
                reverse.setdefault(v, []).append(u)
            else:
                world_prob *= 1.0 - p
        if world_prob > 0.0 and _mutually_connected(
            adjacency, reverse, terminal_list
        ):
            total += world_prob
    return min(1.0, total)
