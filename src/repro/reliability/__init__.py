"""Reliability-search baselines: MC-Sampling [13] and RHT-sampling [20]."""

from .montecarlo import MCSamplingResult, mc_sampling_search, mc_reliability
from .rht import RHTSearchResult, rht_reliability, rht_reliability_search
from .estimators import SearchMethod, make_method_suite
from .variance_reduction import (
    antithetic_reliability,
    stratified_reliability,
)
from .variants import (
    k_terminal_reliability,
    all_terminal_reliability,
    exact_k_terminal_reliability,
)

__all__ = [
    "MCSamplingResult",
    "mc_sampling_search",
    "mc_reliability",
    "RHTSearchResult",
    "rht_reliability",
    "rht_reliability_search",
    "SearchMethod",
    "make_method_suite",
    "k_terminal_reliability",
    "all_terminal_reliability",
    "exact_k_terminal_reliability",
    "antithetic_reliability",
    "stratified_reliability",
]
