"""The MC-Sampling baseline (paper, Section 7.1, from Fishman [13]).

Monte-Carlo sampling on the *whole graph*: draw ``K`` possible worlds
and return every node reachable from the source set in at least
``η K`` of them.  Sampling is performed online, combined with a BFS from
the source set (arc coins are flipped lazily as the BFS reaches them),
exactly as the paper describes for its baseline implementation.

This is also the paper's accuracy proxy: with large ``K`` the estimator
converges to the true answer, so RQ-tree precision/recall are measured
against its output (Section 7.1, "Accuracy assessment criteria").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Union

from ..errors import EmptySourceSetError, InvalidThresholdError
from ..graph.sampling import ReachabilityFrequencyEstimator
from ..graph.uncertain import UncertainGraph

__all__ = ["MCSamplingResult", "mc_sampling_search", "mc_reliability"]


@dataclass
class MCSamplingResult:
    """Answer set plus instrumentation of one MC-Sampling run."""

    nodes: Set[int]
    frequencies: Dict[int, float]
    num_samples: int
    seconds: float


def _normalize(sources: Union[int, Sequence[int]]) -> List[int]:
    if isinstance(sources, int):
        return [sources]
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    return source_list


def mc_sampling_search(
    graph: UncertainGraph,
    sources: Union[int, Sequence[int]],
    eta: float,
    num_samples: int = 1000,
    seed: Optional[int] = None,
    max_hops: Optional[int] = None,
    backend: str = "auto",
) -> MCSamplingResult:
    """Answer ``RS(S, eta)`` with whole-graph Monte-Carlo sampling.

    Time complexity ``O(K (n + m))`` (Table 1): each of the ``K`` worlds
    costs one (lazy) BFS over at most the whole graph.  *backend*
    selects the sampling implementation (``"auto"``/``"python"``/
    ``"numpy"``; see :mod:`repro.accel`).
    """
    source_list = _normalize(sources)
    if math.isnan(eta) or not 0.0 < eta < 1.0:
        raise InvalidThresholdError(eta)
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    start = time.perf_counter()
    estimator = ReachabilityFrequencyEstimator(
        graph, source_list, seed=seed, max_hops=max_hops, backend=backend
    )
    estimator.run(num_samples)
    nodes = estimator.nodes_above(eta)
    elapsed = time.perf_counter() - start
    return MCSamplingResult(
        nodes=nodes,
        frequencies=estimator.frequencies(),
        num_samples=num_samples,
        seconds=elapsed,
    )


def mc_reliability(
    graph: UncertainGraph,
    sources: Union[int, Sequence[int]],
    target: int,
    num_samples: int = 1000,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> float:
    """Two-terminal(-style) reliability estimate ``R(S, t)`` by sampling."""
    source_list = _normalize(sources)
    estimator = ReachabilityFrequencyEstimator(
        graph, source_list, seed=seed, backend=backend
    )
    estimator.run(num_samples)
    return estimator.frequencies().get(target, 0.0)
