"""Variance-reduced Monte-Carlo reliability estimators.

The paper's MC baseline cites Fishman's comparison of Monte-Carlo
methods for s-t connectedness [13]; plain (crude) sampling is only the
first of those.  This module implements two classic variance-reduction
schemes for two-terminal reliability, keeping the library's coverage of
the sampling design space honest:

* **antithetic sampling** — worlds are drawn in coin-flipped pairs
  (``U`` and ``1 − U`` per arc).  The pair's indicator outcomes are
  negatively correlated whenever the reachability indicator is monotone
  in the arc states (it is: adding arcs can only help), so the paired
  estimator's variance never exceeds crude MC at equal cost and usually
  beats it;
* **stratified sampling** — condition exhaustively on the joint state
  of the ``k`` *most influential* arcs (largest ``p(1−p)``, the
  per-arc Bernoulli variance): within each of the ``2^k`` strata the
  remaining arcs are sampled crudely, and stratum estimates recombine
  by total probability.  Exact stratum weights remove all variance
  contributed by the conditioned arcs.

Both estimators are unbiased; the test-suite checks them against the
exponential oracle and verifies the variance ordering empirically.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import EmptySourceSetError, NodeNotFoundError
from ..graph.uncertain import UncertainGraph

__all__ = [
    "antithetic_reliability",
    "stratified_reliability",
]


def _check(graph: UncertainGraph, sources: Sequence[int], target: int):
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    for s in source_list:
        if s not in graph:
            raise NodeNotFoundError(s)
    if target not in graph:
        raise NodeNotFoundError(target)
    return source_list


def _reaches(
    arcs: List[Tuple[int, int, float]],
    states: Sequence[bool],
    sources: Sequence[int],
    target: int,
) -> bool:
    """Does the world selected by *states* connect sources to target?"""
    adjacency: Dict[int, List[int]] = {}
    for (u, v, _), present in zip(arcs, states):
        if present:
            adjacency.setdefault(u, []).append(v)
    seen = set(sources)
    if target in seen:
        return True
    queue = deque(sources)
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):
            if v == target:
                return True
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return False


def antithetic_reliability(
    graph: UncertainGraph,
    sources: Sequence[int],
    target: int,
    num_pairs: int = 500,
    seed: Optional[int] = None,
) -> float:
    """Antithetic-pairs estimate of ``R(S, t)``.

    Each iteration draws one uniform vector ``U`` over the arcs and
    evaluates the reachability indicator at both ``U`` and its
    reflection ``1 − U`` (arc ``a`` present iff the coordinate is below
    ``p(a)``).  Total worlds evaluated: ``2 * num_pairs``, the same
    budget as crude MC with ``2 num_pairs`` samples.
    """
    source_list = _check(graph, sources, target)
    if target in source_list:
        return 1.0
    if num_pairs <= 0:
        raise ValueError(f"num_pairs must be positive, got {num_pairs}")
    rng = random.Random(seed)
    arcs = list(graph.arcs())
    total = 0
    for _ in range(num_pairs):
        uniforms = [rng.random() for _ in arcs]
        forward = [u < p for u, (_, _, p) in zip(uniforms, arcs)]
        mirrored = [1.0 - u < p for u, (_, _, p) in zip(uniforms, arcs)]
        total += _reaches(arcs, forward, source_list, target)
        total += _reaches(arcs, mirrored, source_list, target)
    return total / (2 * num_pairs)


def stratified_reliability(
    graph: UncertainGraph,
    sources: Sequence[int],
    target: int,
    num_samples: int = 1000,
    num_strata_arcs: int = 4,
    seed: Optional[int] = None,
) -> float:
    """Stratified estimate of ``R(S, t)``.

    The ``num_strata_arcs`` arcs with the largest Bernoulli variance
    ``p(1−p)`` are conditioned exhaustively (``2^k`` strata, weights
    computed exactly); the per-stratum conditional reliability is
    estimated by crude MC with a sample budget proportional to the
    stratum weight (at least one sample per stratum).
    """
    source_list = _check(graph, sources, target)
    if target in source_list:
        return 1.0
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if num_strata_arcs < 0:
        raise ValueError(
            f"num_strata_arcs must be non-negative, got {num_strata_arcs}"
        )
    rng = random.Random(seed)
    arcs = list(graph.arcs())
    if not arcs:
        return 0.0
    k = min(num_strata_arcs, len(arcs), 10)
    # Choose the k highest-variance arcs as the stratification basis.
    order = sorted(
        range(len(arcs)), key=lambda i: -(arcs[i][2] * (1.0 - arcs[i][2]))
    )
    strata_indices = sorted(order[:k])
    free_indices = [i for i in range(len(arcs)) if i not in strata_indices]

    estimate = 0.0
    for pattern in itertools.product((False, True), repeat=k):
        weight = 1.0
        for bit, index in zip(pattern, strata_indices):
            p = arcs[index][2]
            weight *= p if bit else (1.0 - p)
        if weight == 0.0:
            continue
        budget = max(1, round(num_samples * weight))
        hits = 0
        states = [False] * len(arcs)
        for bit, index in zip(pattern, strata_indices):
            states[index] = bit
        for _ in range(budget):
            for index in free_indices:
                states[index] = rng.random() < arcs[index][2]
            hits += _reaches(arcs, states, source_list, target)
        estimate += weight * (hits / budget)
    return min(1.0, estimate)
