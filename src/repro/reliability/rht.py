"""RHT-style recursive sampling baseline (Jin et al. [20]).

The paper's second baseline is the RHT-sampling estimator of
"Distance-Constraint Reachability Computation in Uncertain Graphs"
(PVLDB 2011), used with the distance threshold set to the graph
diameter so it degenerates to plain reachability.  The authors' C++
code is not available, so this module reimplements the estimator's
core idea — **recursive path factoring with a sampling fallback**:

1. find a most-likely path ``P = (e_1, ..., e_l)`` from the sources to
   the target;
2. decompose exactly on the disjoint prefix events of ``P``::

       R = Pr[all e_i present]
         + sum_i Pr[e_1..e_{i-1} present, e_i absent] * R_i

   where ``R_i`` is the reliability of the graph conditioned on that
   prefix event (arcs ``e_1..e_{i-1}`` forced present, ``e_i`` removed);
3. estimate each ``R_i`` recursively while a divide budget lasts, then
   by a small Monte-Carlo run on the conditioned graph.

The decomposition terms are exact and the MC fallback is unbiased, so
the overall estimator is unbiased with lower variance than naive MC for
the same work — the property RHT is built around.  Reliability *search*
still requires one invocation per target node (paper, Section 1), which
is the quadratic blow-up Table 4 demonstrates.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..errors import EmptySourceSetError, InvalidThresholdError, NodeNotFoundError
from ..graph.uncertain import UncertainGraph

__all__ = ["rht_reliability", "rht_reliability_search", "RHTSearchResult"]

Arc = Tuple[int, int]


def _overlay_most_likely_path(
    graph: UncertainGraph,
    sources: Set[int],
    target: int,
    forced: Set[Arc],
    removed: Set[Arc],
) -> List[Arc]:
    """Most-likely source->target path under the (forced, removed) overlay.

    Forced arcs count as probability 1 (weight 0); removed arcs are
    skipped.  Returns the path as an arc list, empty when unreachable.
    """
    dist: Dict[int, float] = {}
    parent: Dict[int, Optional[Arc]] = {}
    heap: List[Tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (0.0, s))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        if u == target:
            break
        for v, p in graph.successors(u).items():
            arc = (u, v)
            if arc in removed:
                continue
            weight = 0.0 if arc in forced else (-math.log(p) if p < 1.0 else 0.0)
            nd = d + weight
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = arc
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        return []
    path: List[Arc] = []
    node = target
    while parent[node] is not None:
        arc = parent[node]
        path.append(arc)
        node = arc[0]
    path.reverse()
    return path


def _overlay_sample_reaches(
    graph: UncertainGraph,
    sources: Set[int],
    target: int,
    forced: Set[Arc],
    removed: Set[Arc],
    rng: random.Random,
) -> bool:
    """One lazy world sample under the overlay: does S reach the target?"""
    visited = set(sources)
    if target in visited:
        return True
    queue = deque(visited)
    rng_random = rng.random
    while queue:
        u = queue.popleft()
        for v, p in graph.successors(u).items():
            if v in visited:
                continue
            arc = (u, v)
            if arc in removed:
                continue
            if arc in forced or rng_random() < p:
                if v == target:
                    return True
                visited.add(v)
                queue.append(v)
    return False


def _mc_fallback(
    graph: UncertainGraph,
    sources: Set[int],
    target: int,
    forced: Set[Arc],
    removed: Set[Arc],
    rng: random.Random,
    num_samples: int,
) -> float:
    hits = sum(
        1
        for _ in range(num_samples)
        if _overlay_sample_reaches(graph, sources, target, forced, removed, rng)
    )
    return hits / num_samples


def _estimate(
    graph: UncertainGraph,
    sources: Set[int],
    target: int,
    forced: Set[Arc],
    removed: Set[Arc],
    budget: int,
    fallback_samples: int,
    rng: random.Random,
) -> float:
    """Recursive path-factoring estimate of the conditioned reliability."""
    path = _overlay_most_likely_path(graph, sources, target, forced, removed)
    if not path:
        return 0.0
    free_arcs = [arc for arc in path if arc not in forced]
    if not free_arcs:
        return 1.0  # the whole path is already forced present
    if budget <= 0:
        return _mc_fallback(
            graph, sources, target, forced, removed, rng, fallback_samples
        )
    probabilities = [graph.probability(u, v) for u, v in free_arcs]
    # Exact decomposition: the event space splits into "all free arcs
    # present" plus the disjoint prefix events "e_1..e_{i-1} present,
    # e_i absent".
    result = math.prod(probabilities)
    prefix = 1.0
    child_budget = (budget - 1) // len(free_arcs)
    for i, arc in enumerate(free_arcs):
        p_i = probabilities[i]
        branch_weight = prefix * (1.0 - p_i)
        if branch_weight > 1e-12:
            branch_forced = forced | set(free_arcs[:i])
            branch_removed = removed | {arc}
            branch_value = _estimate(
                graph,
                sources,
                target,
                branch_forced,
                branch_removed,
                child_budget,
                fallback_samples,
                rng,
            )
            result += branch_weight * branch_value
        prefix *= p_i
    return min(1.0, result)


def rht_reliability(
    graph: UncertainGraph,
    sources: Union[int, Sequence[int]],
    target: int,
    budget: int = 64,
    fallback_samples: int = 24,
    seed: Optional[int] = None,
) -> float:
    """Estimate ``R(S, t)`` by recursive path factoring.

    Parameters
    ----------
    budget:
        Number of recursive expansions allowed; each expansion splits
        the remaining budget among its branches.  Budget 0 degenerates
        to plain Monte Carlo.
    fallback_samples:
        Worlds sampled per exhausted-budget branch.
    """
    if isinstance(sources, int):
        source_list = [sources]
    else:
        source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    for s in source_list:
        if s not in graph:
            raise NodeNotFoundError(s)
    if target not in graph:
        raise NodeNotFoundError(target)
    source_set = set(source_list)
    if target in source_set:
        return 1.0
    rng = random.Random(seed)
    return _estimate(
        graph, source_set, target, set(), set(), budget, fallback_samples, rng
    )


@dataclass
class RHTSearchResult:
    """Answer set plus instrumentation of one RHT reliability search."""

    nodes: Set[int]
    reliabilities: Dict[int, float]
    seconds: float


def rht_reliability_search(
    graph: UncertainGraph,
    sources: Union[int, Sequence[int]],
    eta: float,
    budget: int = 64,
    fallback_samples: int = 24,
    seed: Optional[int] = None,
) -> RHTSearchResult:
    """Answer ``RS(S, eta)`` by one RHT estimate per node.

    This is the adaptation the paper describes (Section 1): the
    detection estimator must run for every node in the graph, giving
    the ``O(n^2 d)``-flavoured cost that makes RHT uncompetitive for
    reliability search (Table 4).
    """
    if math.isnan(eta) or not 0.0 < eta < 1.0:
        raise InvalidThresholdError(eta)
    if isinstance(sources, int):
        source_list = [sources]
    else:
        source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    start = time.perf_counter()
    source_set = set(source_list)
    reliabilities: Dict[int, float] = {s: 1.0 for s in source_set}
    answer: Set[int] = set(source_set)
    rng = random.Random(seed)
    for t in graph.nodes():
        if t in source_set:
            continue
        estimate = _estimate(
            graph,
            source_set,
            t,
            set(),
            set(),
            budget,
            fallback_samples,
            random.Random(rng.randrange(2**31)),
        )
        reliabilities[t] = estimate
        if estimate >= eta:
            answer.add(t)
    return RHTSearchResult(
        nodes=answer,
        reliabilities=reliabilities,
        seconds=time.perf_counter() - start,
    )
