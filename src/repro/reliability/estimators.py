"""Uniform estimator interface over the reliability-search methods.

The evaluation harness (:mod:`repro.eval`) compares four methods that
answer the same query with different machinery.  This module adapts them
to one call signature, ``estimator(graph, sources, eta) -> set``, so the
harness, the examples, and the benchmark drivers never special-case a
method.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Set, Union

from ..core.engine import RQTreeEngine
from ..graph.uncertain import UncertainGraph
from .montecarlo import mc_sampling_search
from .rht import rht_reliability_search

__all__ = ["SearchMethod", "make_method_suite"]

SearchMethod = Callable[[UncertainGraph, Sequence[int], float], Set[int]]


def make_method_suite(
    engine: RQTreeEngine,
    num_samples: int = 1000,
    rht_budget: int = 64,
    seed: Optional[int] = None,
    include_rht: bool = False,
    include_lb_plus: bool = False,
) -> Dict[str, SearchMethod]:
    """Build the paper's method suite over a shared RQ-tree engine.

    Returns a name -> callable map with keys ``rq-tree-lb``,
    ``rq-tree-mc``, ``mc-sampling`` and (optionally) ``rht-sampling``
    and ``rq-tree-lb+``.  RHT is opt-in because its per-node cost makes
    it impractical beyond the smallest graphs — exactly the point of
    Table 4; lb+ is opt-in to keep the default suite the paper's own.
    """

    def rq_lb(
        graph: UncertainGraph, sources: Sequence[int], eta: float
    ) -> Set[int]:
        return engine.query(list(sources), eta, method="lb").nodes

    def rq_mc(
        graph: UncertainGraph, sources: Sequence[int], eta: float
    ) -> Set[int]:
        return engine.query(
            list(sources), eta, method="mc", num_samples=num_samples, seed=seed
        ).nodes

    def mc(
        graph: UncertainGraph, sources: Sequence[int], eta: float
    ) -> Set[int]:
        return mc_sampling_search(
            graph, list(sources), eta, num_samples=num_samples, seed=seed
        ).nodes

    suite: Dict[str, SearchMethod] = {
        "rq-tree-lb": rq_lb,
        "rq-tree-mc": rq_mc,
        "mc-sampling": mc,
    }
    if include_lb_plus:

        def rq_lb_plus(
            graph: UncertainGraph, sources: Sequence[int], eta: float
        ) -> Set[int]:
            return engine.query(list(sources), eta, method="lb+").nodes

        suite["rq-tree-lb+"] = rq_lb_plus
    if include_rht:

        def rht(
            graph: UncertainGraph, sources: Sequence[int], eta: float
        ) -> Set[int]:
            return rht_reliability_search(
                graph, list(sources), eta, budget=rht_budget, seed=seed
            ).nodes

        suite["rht-sampling"] = rht
    return suite
