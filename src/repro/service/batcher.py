"""Cross-query world batching: share sampled worlds between queries.

The s-t reliability literature's main cost observation (Ke et al.) is
that *sample sharing across queries* dominates every other lever once
an index is in place.  In this engine the shareable unit is the MC
kernel's coin draw: the packed Bernoulli matrix for a chunk of worlds
depends only on ``(graph.version, seed, num_samples)`` — not on the
query's sources or candidate cluster — so any set of concurrent
queries with the same sampling signature would each draw the *same*
coins.  In particular, concurrent queries whose candidate subgraphs
map to the same RQ-tree cluster (the common monitoring shape: many
sources polled against one region at one seed) all share one batch of
worlds instead of sampling it once per query.

:class:`WorldBatcher` deduplicates that work.  Workers *lease* a
:class:`~repro.accel.coins.CoinBlock` for their query's
:class:`BatchKey` before calling the engine and *release* it after;
all concurrent holders of one key share one block, the first consumer
of each chunk pays for its draw, and the block is dropped when the
last holder releases it (memory is bounded by what is actually in
flight — repeat queries over time are the result cache's job, not the
batcher's).

Because a block's bits are exactly what a private per-query
``default_rng(seed)`` would have drawn (see
:mod:`repro.accel.coins`), sharing never changes any query's answer:
concurrent and serial execution stay byte-identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from ..accel import numpy_available
from ..accel.coins import CoinBlock
from .metrics import MetricsRegistry, get_registry

__all__ = ["BatchKey", "WorldBatcher"]


@dataclass(frozen=True)
class BatchKey:
    """Identity of one shareable sampling stream.

    Two queries may share worlds iff their keys are equal: the coins
    depend on the graph version (arc order and probabilities), the
    verification seed, and the total world count (which fixes the
    chunk partition).  Sources, candidate sets, and hop budgets do NOT
    enter the key — coins are drawn for every arc of the graph, so
    queries differing only in those dimensions still share.
    """

    graph_version: int
    seed: int
    num_worlds: int


class _Lease:
    __slots__ = ("block", "holders")

    def __init__(self, block: CoinBlock) -> None:
        self.block = block
        self.holders = 0


class WorldBatcher:
    """Reference-counted pool of live :class:`CoinBlock` objects."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._leases: Dict[BatchKey, _Lease] = {}
        self._registry = registry

    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @staticmethod
    def eligible(
        method: str,
        seed: Optional[int],
        budget: Optional[object],
        backend: str,
    ) -> bool:
        """Whether a query's sampling work is shareable.

        Only un-budgeted, explicitly seeded MC verification shares:
        budgeted runs chunk their sampling by wall clock (a different,
        load-dependent partition), unseeded runs are fresh draws by
        contract, and ``backend="python"`` never touches the kernel.
        """
        return (
            method == "mc"
            and seed is not None
            and budget is None
            and backend != "python"
            and numpy_available()
        )

    def lease(self, key: BatchKey) -> CoinBlock:
        """The shared block for *key*, created on first lease.

        Must be paired with :meth:`release` (use try/finally)."""
        metrics = self._metrics()
        with self._lock:
            lease = self._leases.get(key)
            if lease is None:
                lease = self._leases[key] = _Lease(
                    CoinBlock(key.seed, key.num_worlds)
                )
                metrics.counter("service.batcher.blocks_created").inc()
            else:
                metrics.counter("service.batcher.blocks_shared").inc()
            lease.holders += 1
            metrics.gauge("service.batcher.active_blocks").set(
                len(self._leases)
            )
            return lease.block

    def release(self, key: BatchKey) -> None:
        """Drop one hold on *key*; the block dies with its last holder."""
        with self._lock:
            lease = self._leases.get(key)
            if lease is None:
                return
            lease.holders -= 1
            if lease.holders <= 0:
                block = self._leases.pop(key).block
                metrics = self._metrics()
                metrics.counter("service.batcher.chunks_drawn").inc(
                    block.draws
                )
                metrics.counter("service.batcher.chunks_reused").inc(
                    block.hits
                )
                metrics.gauge("service.batcher.active_blocks").set(
                    len(self._leases)
                )

    @property
    def active_blocks(self) -> int:
        with self._lock:
            return len(self._leases)
