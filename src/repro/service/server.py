"""ReliabilityService: one shared engine serving concurrent queries.

This is the facade the CLI's ``repro serve`` and the tests drive.  It
ties the serving-layer pieces together around a single
:class:`~repro.core.engine.RQTreeEngine` (or, with ``shards=K``, a
:class:`~repro.shard.ShardedRQTreeEngine` spanning ``K`` worker
processes — the request path is identical either way):

* requests enter through :meth:`submit` (non-blocking, returns a
  :class:`concurrent.futures.Future`) or :meth:`query` (blocking);
* :class:`~repro.service.pool.AdmissionPolicy` sheds requests beyond
  ``max_in_flight`` at the door, and stale requests at dequeue time —
  a shed request resolves to a *degraded* :class:`QueryResult` (empty,
  ``degraded=True``), never an exception;
* a :class:`~repro.service.cache.TTLResultCache` answers repeats of
  deterministic queries without touching the engine, and identical
  in-flight requests are *single-flighted* (followers piggyback on the
  leader's future instead of re-running the query);
* eligible queries lease shared worlds from a
  :class:`~repro.service.batcher.WorldBatcher`, so concurrent queries
  with the same sampling signature draw their Monte-Carlo coins once;
* everything records into a :class:`MetricsRegistry`
  (:meth:`metrics_snapshot` merges it with both caches' statistics).

Determinism contract: for any fixed request, the answer produced
through the service — whatever the worker count, cache state, or
co-resident load — is byte-identical to calling
``engine.query(...)`` serially, except for *shed* requests, which are
explicitly degraded.  The parity tests in ``tests/test_service.py``
enforce this.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Union

from ..core.caching import CachingRQTreeEngine
from ..core.candidates import CandidateResult
from ..core.engine import QueryResult, RQTreeEngine
from ..estimators import is_cacheable, validate_method
from ..resilience.budget import QueryBudget
from ..shard.engine import ShardedRQTreeEngine
from .batcher import BatchKey, WorldBatcher
from .cache import TTLResultCache
from .metrics import MetricsRegistry, get_registry
from .pool import AdmissionPolicy, WorkerPool

__all__ = ["QueryRequest", "ReliabilityService"]


class QueryRequest:
    """One admitted query: parameters plus resolution state."""

    __slots__ = (
        "sources", "eta", "method", "num_samples", "seed",
        "multi_source_mode", "max_hops", "backend", "budget",
        "future", "followers", "cache_key", "submitted_at",
    )

    def __init__(
        self,
        sources: List[int],
        eta: float,
        method: str,
        num_samples: int,
        seed: Optional[int],
        multi_source_mode: str,
        max_hops: Optional[int],
        backend: str,
        budget: Optional[QueryBudget],
        cache_key: Optional[object],
        submitted_at: float,
    ) -> None:
        self.sources = sources
        self.eta = eta
        self.method = method
        self.num_samples = num_samples
        self.seed = seed
        self.multi_source_mode = multi_source_mode
        self.max_hops = max_hops
        self.backend = backend
        self.budget = budget
        self.cache_key = cache_key
        self.submitted_at = submitted_at
        self.future: "Future[QueryResult]" = Future()
        #: Futures of deduplicated identical in-flight requests.
        self.followers: "List[Future[QueryResult]]" = []


class ReliabilityService:
    """Concurrent query-serving facade over one shared engine.

    Parameters
    ----------
    engine:
        The engine every worker queries.  A
        :class:`~repro.core.caching.CachingRQTreeEngine` is unwrapped
        (its LRU is not thread-safe; the service's own
        :class:`TTLResultCache` takes over, and the wrapper's
        statistics still appear in :meth:`metrics_snapshot`).
    workers:
        Worker-thread count.
    admission:
        Load-shedding limits (see :class:`AdmissionPolicy`).
    cache:
        Result cache; ``None`` builds a default
        :class:`TTLResultCache`.  Pass ``cache=False``-like behaviour
        by using ``TTLResultCache(capacity=1, ttl_seconds=1e-9)`` if a
        test needs an effectively disabled cache.
    registry:
        Metrics registry; defaults to the process-global one, which is
        also where the engine's built-in instrumentation records — so
        one snapshot covers the whole pipeline.
    enable_batching:
        Whether eligible concurrent queries share sampled worlds.
        Sharing never changes answers; disabling it exists for A/B
        benchmarking.
    shards:
        ``None`` (default) serves the given engine directly.  A count
        ``K >= 1`` replaces it with a
        :class:`~repro.shard.ShardedRQTreeEngine` built over the same
        graph — ``K`` partition-aligned engines in worker processes
        behind the scatter-gather gateway — which the service then
        owns (and closes on :meth:`stop`).  Alternatively pass an
        already-built sharded engine as *engine* (the service does not
        close engines it did not build).
    shard_mode:
        ``"process"`` or ``"inline"``; forwarded to
        :meth:`ShardedRQTreeEngine.build` when *shards* is set.
    shard_seed:
        Root seed for the shard plan and per-shard index builds.
    shard_transport:
        ``"shm"`` (default) or ``"pickle"``; forwarded to
        :meth:`ShardedRQTreeEngine.build` when *shards* is set.  See
        :mod:`repro.shard.shm` for the shared-memory data plane.
    shard_respawn:
        When building a sharded engine (*shards* set), attach a
        :class:`~repro.shard.supervisor.ShardSupervisor`: liveness
        pings, supervised respawn of crashed workers, per-shard circuit
        breakers, and redispatch of in-flight requests.  See
        ``docs/ARCHITECTURE.md`` ("Failure domains & recovery").
    shard_retry_timeout_ms:
        Per-shard attempt timeout (milliseconds).  A sub-query that
        exceeds it has its worker recycled and is redispatched once.
        Requires *shard_respawn*.  ``None`` disables the limit.
    shard_hedge_after_ms:
        Hedged dispatch: after this many milliseconds without an
        answer, the supervisor promotes a warm standby and duplicates
        the sub-query (first answer wins).  ``0`` derives the delay
        from the shard's observed p99 latency; ``None`` disables
        hedging.  Requires *shard_respawn*.
    live:
        Accept streaming arc updates (``POST /update`` /
        :meth:`apply_updates`).  With *shards* set this builds a
        :class:`~repro.live.LiveShardedEngine` (epoch-versioned
        snapshots, streamed per-shard update slices, zero-downtime
        rebalancing); without shards a plain engine is wrapped in a
        :class:`~repro.live.LiveRQTreeEngine` reusing its index.
        Result-cache keys carry the epoch, so answers cached before an
        update can never serve after it.
    """

    def __init__(
        self,
        engine: Union[
            RQTreeEngine, CachingRQTreeEngine, ShardedRQTreeEngine
        ],
        workers: int = 4,
        admission: Optional[AdmissionPolicy] = None,
        cache: Optional[TTLResultCache] = None,
        registry: Optional[MetricsRegistry] = None,
        enable_batching: bool = True,
        shards: Optional[int] = None,
        shard_mode: str = "process",
        shard_seed: int = 0,
        shard_transport: str = "shm",
        shard_respawn: bool = False,
        shard_retry_timeout_ms: Optional[float] = None,
        shard_hedge_after_ms: Optional[float] = None,
        live: bool = False,
    ) -> None:
        if isinstance(engine, CachingRQTreeEngine):
            self._engine_cache_stats = engine.stats
            engine = engine.engine
        else:
            self._engine_cache_stats = None
        self._owned_sharded: Optional[ShardedRQTreeEngine] = None
        if shards is not None:
            if isinstance(engine, ShardedRQTreeEngine):
                raise ValueError(
                    "pass either an already-sharded engine or shards=K, "
                    "not both"
                )
            if live:
                from ..live import LiveShardedEngine

                builder = LiveShardedEngine.build
            else:
                builder = ShardedRQTreeEngine.build
            engine = builder(
                engine.graph,
                shards=shards,
                seed=shard_seed,
                mode=shard_mode,
                flow_engine=getattr(engine, "flow_engine", "dinic"),
                transport=shard_transport,
                supervise=shard_respawn,
                retry_timeout_seconds=(
                    None if shard_retry_timeout_ms is None
                    else shard_retry_timeout_ms / 1000.0
                ),
                hedge_after_seconds=(
                    None if shard_hedge_after_ms is None
                    else shard_hedge_after_ms / 1000.0
                ),
            )
            self._owned_sharded = engine
        self._owned_live = None
        if shards is None and live and isinstance(engine, RQTreeEngine):
            from ..core.maintenance import DynamicRQTreeEngine
            from ..live import LiveRQTreeEngine

            engine = LiveRQTreeEngine(DynamicRQTreeEngine.from_engine(engine))
            self._owned_live = engine
        self._engine = engine
        self._registry = registry
        self._cache = cache if cache is not None else TTLResultCache()
        self._admission = admission if admission is not None else AdmissionPolicy()
        self._batcher = WorldBatcher(registry=registry)
        self._enable_batching = enable_batching
        self._pool = WorkerPool(self._handle, workers=workers)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._inflight_keys: Dict[object, QueryRequest] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def engine(self) -> RQTreeEngine:
        return self._engine

    @property
    def cache(self) -> TTLResultCache:
        return self._cache

    @property
    def admission(self) -> AdmissionPolicy:
        """The service's load-shedding limits (read-only by convention);
        frontends derive their connection caps from it."""
        return self._admission

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def running(self) -> bool:
        return self._pool.running

    def start(self) -> "ReliabilityService":
        self._pool.start()
        return self

    def stop(self, drain: bool = True) -> None:
        self._pool.stop(drain=drain)
        if self._owned_sharded is not None:
            self._owned_sharded.close()
        if self._owned_live is not None:
            self._owned_live.close()

    def __enter__(self) -> "ReliabilityService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        method: str = "lb",
        num_samples: int = 1000,
        seed: Optional[int] = None,
        multi_source_mode: str = "greedy",
        max_hops: Optional[int] = None,
        backend: str = "auto",
        budget: Optional[QueryBudget] = None,
    ) -> "Future[QueryResult]":
        """Enqueue a query; the returned future resolves to its result.

        Invalid *parameters* raise here, synchronously (a caller bug is
        not an overload condition).  Overload — too many requests in
        flight — resolves the future immediately with a degraded shed
        result instead.
        """
        source_list = RQTreeEngine._normalize_sources(sources)
        validate_method(method, max_hops=max_hops)
        metrics = self._metrics()
        metrics.counter("service.submitted").inc()

        cacheable = budget is None and is_cacheable(method, seed)
        cache_key = (
            TTLResultCache.make_key(
                self._graph_generation(), source_list, eta, method,
                num_samples, seed, multi_source_mode, max_hops, backend,
            )
            if cacheable
            else None
        )
        request = QueryRequest(
            source_list, eta, method, num_samples, seed, multi_source_mode,
            max_hops, backend, budget, cache_key, time.perf_counter(),
        )

        if cache_key is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                request.future.set_result(cached)
                metrics.counter("service.completed").inc()
                return request.future
        else:
            self._cache.record_bypass()

        with self._lock:
            if cache_key is not None:
                leader = self._inflight_keys.get(cache_key)
                if leader is not None:
                    leader.followers.append(request.future)
                    metrics.counter("service.deduped").inc()
                    return request.future
            if self._in_flight >= self._admission.max_in_flight:
                metrics.counter("service.shed").inc()
                request.future.set_result(
                    self._shed_result(request, "shed: max in-flight exceeded")
                )
                return request.future
            self._in_flight += 1
            if cache_key is not None:
                self._inflight_keys[cache_key] = request
            metrics.gauge("service.in_flight").set(self._in_flight)

        self._pool.submit(request)
        return request.future

    def query(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        timeout: Optional[float] = None,
        **kwargs: object,
    ) -> QueryResult:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(sources, eta, **kwargs).result(timeout=timeout)

    def shed_pressure(self) -> float:
        """Current overload fraction in ``[0, 1]``: in-flight requests
        over the admission cap.  Frontends scale their ``Retry-After``
        hints by it (see :func:`~repro.service.wire.retry_after_seconds`)
        so backoff advice tracks how overloaded the service really is.
        """
        with self._lock:
            return min(
                1.0, self._in_flight / self._admission.max_in_flight
            )

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------
    def _handle(self, request: QueryRequest) -> None:
        metrics = self._metrics()
        queue_wait = time.perf_counter() - request.submitted_at
        metrics.histogram("service.queue_wait_seconds").observe(queue_wait)
        try:
            deadline = self._admission.queue_deadline_seconds
            if deadline is not None and queue_wait >= deadline:
                metrics.counter("service.shed").inc()
                self._resolve(
                    request,
                    result=self._shed_result(
                        request, "shed: queue deadline exceeded"
                    ),
                )
                return
            try:
                result = self._execute(request)
            except Exception as error:
                metrics.counter("service.errors").inc()
                self._resolve(request, error=error)
                return
            if request.cache_key is not None and not result.degraded:
                self._cache.put(request.cache_key, result)
            self._resolve(request, result=result)
        finally:
            with self._lock:
                self._in_flight -= 1
                metrics.gauge("service.in_flight").set(self._in_flight)

    def _execute(self, request: QueryRequest) -> QueryResult:
        batch_key = None
        coin_source = None
        if self._enable_batching and WorldBatcher.eligible(
            request.method, request.seed, request.budget, request.backend
        ):
            batch_key = BatchKey(
                graph_version=self._graph_generation(),
                seed=request.seed,
                num_worlds=request.num_samples,
            )
            coin_source = self._batcher.lease(batch_key)
        try:
            return self._engine.query(
                request.sources,
                request.eta,
                method=request.method,
                num_samples=request.num_samples,
                seed=request.seed,
                multi_source_mode=request.multi_source_mode,
                max_hops=request.max_hops,
                backend=request.backend,
                budget=request.budget,
                coin_source=coin_source,
            )
        finally:
            if batch_key is not None:
                self._batcher.release(batch_key)

    def _resolve(
        self,
        request: QueryRequest,
        result: Optional[QueryResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Settle the request's future and every deduplicated follower."""
        metrics = self._metrics()
        with self._lock:
            if (
                request.cache_key is not None
                and self._inflight_keys.get(request.cache_key) is request
            ):
                del self._inflight_keys[request.cache_key]
            followers = request.followers
        latency = time.perf_counter() - request.submitted_at
        metrics.histogram("service.latency_seconds").observe(latency)
        for future in [request.future, *followers]:
            if error is not None:
                future.set_exception(error)
            else:
                # Count BEFORE resolving: a client whose future fires can
                # read /metrics immediately, and the snapshot must
                # already include its own completion.
                metrics.counter("service.completed").inc()
                future.set_result(result)

    def _shed_result(self, request: QueryRequest, reason: str) -> QueryResult:
        """A degraded empty answer for a request the service refused.

        Shedding mirrors the budget contract: the caller gets a
        well-formed :class:`QueryResult` with ``degraded=True`` and
        zero achieved confidence, never an exception.
        """
        return QueryResult(
            nodes=set(),
            eta=request.eta,
            sources=list(request.sources),
            method=request.method,
            candidate_result=CandidateResult(
                candidates=set(),
                clusters_visited=0,
                flow_calls=0,
                final_upper_bound=0.0,
            ),
            candidate_seconds=0.0,
            verification_seconds=0.0,
            tree_height=self._engine_height(),
            num_graph_nodes=self._engine.graph.num_nodes,
            statuses={},
            degraded=True,
            degraded_reason=reason,
            worlds_used=0,
            achieved_confidence=0.0,
        )

    def _engine_height(self) -> int:
        """Index height for shed results: the RQ-tree's for a plain
        engine, the tallest per-shard tree for a sharded one."""
        tree = getattr(self._engine, "tree", None)
        if tree is not None:
            return tree.height
        return getattr(self._engine, "tree_height", 0)

    def _graph_generation(self) -> "tuple":
        """Generation stamp for cache and batch keys.

        Includes both the mutation version and the published epoch:
        an update stream advances the epoch, and cached answers from
        the previous generation must never be served against the new
        one (epoch-scoped cache invalidation).
        """
        graph = self._engine.graph
        return (graph.version, getattr(graph, "epoch", 0))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply_updates(self, ops: Sequence[object]) -> Dict[str, int]:
        """Apply a batch of arc updates through the live engine.

        Only available when the service was built with ``live=True``
        (the wrapped engine then exposes ``apply``).  Returns the epoch
        the batch was published under; in-flight queries keep running
        against their admitted epoch, new submissions see the new one
        (and miss the result cache, whose keys embed the epoch).
        """
        apply = getattr(self._engine, "apply", None)
        if apply is None:
            raise ValueError(
                "engine does not accept updates; construct the service "
                "with live=True to enable the update plane"
            )
        from ..live.updates import normalize_updates

        updates = normalize_updates(ops)
        epoch = apply(updates)
        maybe_rebalance = getattr(self._engine, "maybe_rebalance", None)
        if maybe_rebalance is not None:
            maybe_rebalance()
        return {"epoch": epoch, "ops": len(updates)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """Registry snapshot merged with the serving-layer state.

        The ``service`` section carries what plain instruments can't:
        the result cache's :class:`CacheStats` (and, when the service
        wraps a :class:`CachingRQTreeEngine`, the engine cache's too),
        pool shape, and live queue/in-flight depths.
        """
        snapshot = self._metrics().snapshot()
        with self._lock:
            in_flight = self._in_flight
        service: Dict[str, object] = {
            "workers": self._pool.workers,
            "in_flight": in_flight,
            "queue_depth": self._pool.queue_depth,
            "batching_enabled": self._enable_batching,
            "active_coin_blocks": self._batcher.active_blocks,
            "result_cache": self._cache.stats.as_dict(),
            "result_cache_entries": len(self._cache),
        }
        shards = getattr(self._engine, "num_shards", None)
        if shards is not None:
            service["shards"] = shards
            service["shard_mode"] = self._engine.mode
            service["shard_transport"] = getattr(
                self._engine, "transport", "pickle"
            )
            shard_states = getattr(self._engine, "shard_states", None)
            if shard_states is not None:
                service["shard_states"] = {
                    str(shard_id): state
                    for shard_id, state in shard_states().items()
                }
        epoch = getattr(self._engine, "epoch", None)
        if epoch is not None:
            service["epoch"] = epoch
        if self._engine_cache_stats is not None:
            service["engine_cache"] = self._engine_cache_stats.as_dict()
        snapshot["service"] = service
        return snapshot
