"""Stdlib-only JSON/HTTP frontend for the serving layer.

``repro serve`` exposes a :class:`ReliabilityService` over plain
``http.server`` — no web framework, in keeping with the repo's
no-new-dependencies rule.  Three endpoints:

* ``POST /query`` — body is a JSON object with the same fields as
  :meth:`ReliabilityService.submit` (``sources``, ``eta``, optional
  ``method`` / ``num_samples`` / ``seed`` / ``multi_source_mode`` /
  ``max_hops`` / ``backend``) plus optional budget fields
  (``deadline_ms`` / ``max_worlds`` / ``max_candidate_nodes``).
  Replies 200 with the serialized :class:`QueryResult` (degraded
  answers included — shedding is not an HTTP error), or 400 with
  ``{"error": ...}`` for malformed requests.
* ``POST /update`` — body is a JSON array of arc-update ops (or
  ``{"updates": [...]}``); replies 200 with ``{"accepted": true,
  "epoch": E, "ops": N}`` when the service wraps a live engine, 400
  otherwise (and for malformed or rejected batches — rejection is
  atomic, so a 400 means no op in the batch was applied).
* ``GET /metrics`` — the service's merged metrics snapshot as JSON.
* ``GET /healthz`` — liveness plus graph shape (and the serving epoch
  when the engine is live).

The HTTP layer adds no queueing of its own: every request thread
blocks on the service's future, so admission control and load
shedding live in exactly one place (:class:`AdmissionPolicy`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..errors import ReproError
from .server import ReliabilityService
from .wire import (
    BadRequest,
    observe_request,
    parse_query_body,
    parse_update_body,
    result_to_json,
    retry_after_seconds,
    update_to_json,
)

__all__ = ["ServiceHTTPServer", "result_to_json"]


class _Handler(BaseHTTPRequestHandler):
    """One request; the service instance rides on the server object."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def _service(self) -> ReliabilityService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # Request logging is the metrics registry's job; stderr chatter
        # would swamp the CLI's own output.
        pass

    def _reply(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        if self.headers.get("Connection", "").lower() == "close":
            # http.server closes the socket on request, but without
            # advertising it the client cannot know the connection is
            # done until the FIN races its next request.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        observe_request(
            self.path, status, time.perf_counter() - self._started
        )

    # -- endpoints -----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._started = time.perf_counter()
        if self.path == "/healthz":
            engine = self._service.engine
            health = {
                "status": "ok",
                "nodes": engine.graph.num_nodes,
                "arcs": engine.graph.num_arcs,
                "workers": self._service.workers,
            }
            epoch = getattr(engine, "epoch", None)
            if epoch is not None:
                health["epoch"] = epoch
            shards = getattr(engine, "num_shards", None)
            if shards is not None:
                health["shards"] = shards
                shard_states = getattr(engine, "shard_states", None)
                if shard_states is not None:
                    health["shard_states"] = {
                        str(shard_id): state
                        for shard_id, state in shard_states().items()
                    }
            self._reply(200, health)
        elif self.path == "/metrics":
            self._reply(200, self._service.metrics_snapshot())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._started = time.perf_counter()
        # ALWAYS drain the request body first, whatever the path: with
        # keep-alive, an unread body would be parsed as the next
        # request line, desynchronizing every later exchange on the
        # connection.
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        if self.path == "/update":
            self._handle_update(raw)
            return
        if self.path != "/query":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            sources, eta, kwargs, budget = parse_query_body(raw)
        except BadRequest as error:
            self._reply(400, {"error": str(error)})
            return
        try:
            result = self._service.query(sources, eta, budget=budget, **kwargs)
        except (ReproError, TypeError, ValueError) as error:
            self._reply(400, {"error": f"{type(error).__name__}: {error}"})
            return
        except Exception as error:  # noqa: BLE001 - a 500 beats a
            # torn connection: without this the handler thread dies
            # mid-exchange and the client sees a protocol error.
            self._reply(
                500, {"error": f"internal error: {type(error).__name__}"}
            )
            return
        shed = result.degraded and (result.degraded_reason or "").startswith(
            "shed:"
        )
        self._finish_query(result, shed)

    def _handle_update(self, raw: bytes) -> None:
        try:
            ops = parse_update_body(raw)
            outcome = self._service.apply_updates(ops)
        except (BadRequest, ReproError, TypeError, ValueError) as error:
            self._reply(400, {"error": f"{error}"})
            return
        except Exception as error:  # noqa: BLE001 - see do_POST
            self._reply(
                500, {"error": f"internal error: {type(error).__name__}"}
            )
            return
        self._reply(200, update_to_json(outcome))

    def _finish_query(self, result, shed: bool) -> None:
        self._reply(
            200, result_to_json(result),
            # Jittered and pressure-scaled: constant hints would march
            # every shed client back through the door in one burst.
            retry_after=(
                retry_after_seconds(self._service.shed_pressure())
                if shed else None
            ),
        )


class ServiceHTTPServer:
    """A :class:`ReliabilityService` behind ``http.server``.

    Owns both the service lifecycle and the listener: :meth:`start`
    starts the worker pool and the accept loop (in a daemon thread),
    :meth:`stop` shuts down both.  ``port=0`` binds an ephemeral port;
    read the bound one from :attr:`address`.
    """

    def __init__(
        self,
        service: ReliabilityService,
        host: str = "127.0.0.1",
        port: int = 8787,
    ) -> None:
        self._service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def service(self) -> ReliabilityService:
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved even for ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHTTPServer":
        self._service.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-accept",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (the CLI path)."""
        self._service.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._service.stop()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
