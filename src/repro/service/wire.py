"""Wire-format helpers shared by every HTTP frontend.

Both frontends — the legacy threaded :mod:`repro.service.http_api` and
the asyncio :mod:`repro.service.aio_gateway` — speak the same JSON
protocol.  This module is the single definition of that protocol:
request-body parsing (query fields, budget fields) and response
serialization live here so the two servers cannot drift, and the
conformance suite (``tests/test_http_conformance.py``) can hold both to
one spec.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..core.engine import QueryResult
from ..resilience.budget import QueryBudget

__all__ = [
    "BadRequest",
    "parse_query_body",
    "result_to_json",
]

#: Request fields forwarded verbatim to :meth:`ReliabilityService.submit`.
_QUERY_FIELDS = (
    "method", "num_samples", "seed", "multi_source_mode", "max_hops",
    "backend",
)


class BadRequest(ValueError):
    """A malformed request body; maps to HTTP 400."""


def result_to_json(result: QueryResult) -> Dict[str, object]:
    """The wire form of a :class:`QueryResult` (JSON-able dict)."""
    return {
        "nodes": sorted(result.nodes),
        "eta": result.eta,
        "sources": list(result.sources),
        "method": result.method,
        "num_candidates": len(result.candidate_result.candidates),
        "candidate_seconds": result.candidate_seconds,
        "verification_seconds": result.verification_seconds,
        "height_ratio": result.height_ratio,
        "candidate_ratio": result.candidate_ratio,
        "statuses": {str(n): s for n, s in sorted(result.statuses.items())},
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
        "worlds_used": result.worlds_used,
        "achieved_confidence": result.achieved_confidence,
        "backend_fallbacks": result.backend_fallbacks,
    }


def _parse_budget(body: Dict[str, object]) -> Optional[QueryBudget]:
    deadline_ms = body.get("deadline_ms")
    max_worlds = body.get("max_worlds")
    max_candidate_nodes = body.get("max_candidate_nodes")
    if deadline_ms is None and max_worlds is None and max_candidate_nodes is None:
        return None
    return QueryBudget(
        deadline_seconds=(
            None if deadline_ms is None else float(deadline_ms) / 1000.0
        ),
        max_worlds=max_worlds,
        max_candidate_nodes=max_candidate_nodes,
    )


def parse_query_body(
    raw: bytes,
) -> Tuple[object, float, Dict[str, object], Optional[QueryBudget]]:
    """Decode one ``POST /query`` body.

    Returns ``(sources, eta, submit_kwargs, budget)``; raises
    :class:`BadRequest` (with a caller-safe message) for anything
    malformed.  Parsing and validation errors are deliberately
    indistinguishable from the caller's perspective — both are a 400.
    """
    return parse_query_object(_decode_object(raw))


def parse_query_object(
    body: Dict[str, object],
) -> Tuple[object, float, Dict[str, object], Optional[QueryBudget]]:
    """The dict-level half of :func:`parse_query_body` (used by the
    batch endpoint, where many query objects share one JSON body)."""
    try:
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        sources = body["sources"]
        eta = float(body["eta"])
        kwargs = {
            field: body[field] for field in _QUERY_FIELDS if field in body
        }
        budget = _parse_budget(body)
    except (KeyError, TypeError, ValueError) as error:
        raise BadRequest(f"bad request: {error}") from error
    return sources, eta, kwargs, budget


def _decode_object(raw: bytes) -> Dict[str, object]:
    try:
        body = json.loads(raw or b"{}")
    except ValueError as error:
        raise BadRequest(f"bad request: {error}") from error
    if not isinstance(body, dict):
        raise BadRequest("bad request: request body must be a JSON object")
    return body
