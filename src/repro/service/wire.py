"""Wire-format helpers shared by every HTTP frontend.

Both frontends — the legacy threaded :mod:`repro.service.http_api` and
the asyncio :mod:`repro.service.aio_gateway` — speak the same JSON
protocol.  This module is the single definition of that protocol:
request-body parsing (query fields, budget fields) and response
serialization live here so the two servers cannot drift, and the
conformance suite (``tests/test_http_conformance.py``) can hold both to
one spec.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Optional, Tuple

from ..core.engine import QueryResult
from ..resilience.budget import QueryBudget

__all__ = [
    "BadRequest",
    "observe_request",
    "parse_query_body",
    "parse_update_body",
    "result_to_json",
    "retry_after_seconds",
    "update_to_json",
]

#: Request fields forwarded verbatim to :meth:`ReliabilityService.submit`.
_QUERY_FIELDS = (
    "method", "num_samples", "seed", "multi_source_mode", "max_hops",
    "backend",
)


class BadRequest(ValueError):
    """A malformed request body; maps to HTTP 400."""


def result_to_json(result: QueryResult) -> Dict[str, object]:
    """The wire form of a :class:`QueryResult` (JSON-able dict).

    The ``quality`` block is a stable contract: monitoring pipelines
    alert off it, so its eight keys are always present with these exact
    names, whatever the method, backend, or failure history of the
    query.  ``estimator`` is the estimator that actually ran (it can
    differ from ``method`` under ``"auto"`` planning or the exact
    estimator's fallback) and ``planner_reason`` says why; ``epoch`` is
    the update-plane generation the answer was computed against (0 on a
    frozen engine).  The same values also appear as legacy top-level
    fields.
    """
    return {
        "nodes": sorted(result.nodes),
        "eta": result.eta,
        "sources": list(result.sources),
        "method": result.method,
        "estimator": result.estimator,
        "num_candidates": len(result.candidate_result.candidates),
        "candidate_seconds": result.candidate_seconds,
        "verification_seconds": result.verification_seconds,
        "height_ratio": result.height_ratio,
        "candidate_ratio": result.candidate_ratio,
        "statuses": {str(n): s for n, s in sorted(result.statuses.items())},
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
        "worlds_used": result.worlds_used,
        "achieved_confidence": result.achieved_confidence,
        "backend_fallbacks": result.backend_fallbacks,
        "quality": {
            "achieved_confidence": result.achieved_confidence,
            "worlds_used": result.worlds_used,
            "degraded": result.degraded,
            "degraded_reason": result.degraded_reason,
            "shards_recovered": result.shards_recovered,
            "estimator": result.estimator,
            "planner_reason": result.planner_reason,
            "epoch": result.epoch,
        },
    }


#: Known endpoint paths; anything else is bucketed as ``other`` so a
#: scanner probing random URLs cannot mint unbounded metric names.
_KNOWN_PATHS = frozenset(
    {"/query", "/update", "/batch", "/metrics", "/healthz"}
)


def observe_request(path: str, status: int, seconds: float) -> None:
    """Record one HTTP exchange into the ``service.http.*`` namespace.

    Both frontends call this once per request, after the response is
    fully written, so the latency includes serialization and the socket
    write — the number a client-side SLO actually experiences minus the
    network.  Recorded instruments:

    * ``service.http.requests`` — every exchange;
    * ``service.http.request_seconds`` — end-to-end handler latency
      (one histogram across endpoints; per-endpoint splits come from
      the counters, which are enough to attribute a shift);
    * ``service.http.path.<endpoint>`` — per-endpoint request count
      (``query`` / ``update`` / ``batch`` / ``metrics`` / ``healthz``
      / ``other``);
    * ``service.http.status.<class>`` — response-status class
      (``2xx`` / ``4xx`` / ``5xx``).
    """
    from .metrics import get_registry

    registry = get_registry()
    registry.counter("service.http.requests").inc()
    registry.histogram("service.http.request_seconds").observe(seconds)
    endpoint = path.lstrip("/") if path in _KNOWN_PATHS else "other"
    registry.counter(f"service.http.path.{endpoint}").inc()
    registry.counter(f"service.http.status.{status // 100}xx").inc()


#: Jitter source for Retry-After hints.  Advisory wall-clock backoff is
#: the one place the library *wants* nondeterminism: synchronized
#: retries from shed clients would re-create the very burst that shed
#: them.
_retry_rng = random.Random()


def retry_after_seconds(
    pressure: float, rng: Optional[random.Random] = None
) -> float:
    """A jittered ``Retry-After`` hint scaled by shed *pressure*.

    *pressure* is the service's current overload fraction in ``[0, 1]``
    (in-flight / max-in-flight; a tripped connection cap is 1.0).  The
    base hint grows linearly from 0.25s (idle) to 2.25s (saturated) and
    is then spread by a ±50% jitter so a burst of shed clients does not
    return in lockstep.
    """
    pressure = min(1.0, max(0.0, pressure))
    base = 0.25 + 2.0 * pressure
    jitter = (rng if rng is not None else _retry_rng).uniform(0.5, 1.5)
    return round(base * jitter, 3)


def _parse_budget(body: Dict[str, object]) -> Optional[QueryBudget]:
    deadline_ms = body.get("deadline_ms")
    max_worlds = body.get("max_worlds")
    max_candidate_nodes = body.get("max_candidate_nodes")
    if deadline_ms is None and max_worlds is None and max_candidate_nodes is None:
        return None
    return QueryBudget(
        deadline_seconds=(
            None if deadline_ms is None else float(deadline_ms) / 1000.0
        ),
        max_worlds=max_worlds,
        max_candidate_nodes=max_candidate_nodes,
    )


def parse_query_body(
    raw: bytes,
) -> Tuple[object, float, Dict[str, object], Optional[QueryBudget]]:
    """Decode one ``POST /query`` body.

    Returns ``(sources, eta, submit_kwargs, budget)``; raises
    :class:`BadRequest` (with a caller-safe message) for anything
    malformed.  Parsing and validation errors are deliberately
    indistinguishable from the caller's perspective — both are a 400.
    """
    return parse_query_object(_decode_object(raw))


def parse_query_object(
    body: Dict[str, object],
) -> Tuple[object, float, Dict[str, object], Optional[QueryBudget]]:
    """The dict-level half of :func:`parse_query_body` (used by the
    batch endpoint, where many query objects share one JSON body)."""
    try:
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        sources = body["sources"]
        eta = float(body["eta"])
        kwargs = {
            field: body[field] for field in _QUERY_FIELDS if field in body
        }
        budget = _parse_budget(body)
    except (KeyError, TypeError, ValueError) as error:
        raise BadRequest(f"bad request: {error}") from error
    return sources, eta, kwargs, budget


def parse_update_body(raw: bytes) -> list:
    """Decode one ``POST /update`` body into a list of update ops.

    Accepts either a bare JSON array of op objects or a wrapper object
    ``{"updates": [...]}``.  Each op is an object with ``op`` (``set``,
    ``insert``, or ``delete``), ``u``, ``v``, and — for upserts — ``p``;
    validation of the values themselves happens in
    :func:`repro.live.updates.normalize_updates`, inside the engine's
    atomic admission step.
    """
    try:
        body = json.loads(raw or b"")
    except ValueError as error:
        raise BadRequest(f"bad request: {error}") from error
    if isinstance(body, dict):
        body = body.get("updates")
    if not isinstance(body, list) or not body:
        raise BadRequest(
            "bad request: expected a non-empty JSON array of update ops "
            '(or {"updates": [...]})'
        )
    return body


def update_to_json(outcome: Dict[str, int]) -> Dict[str, object]:
    """The wire form of an accepted update batch."""
    return {
        "accepted": True,
        "epoch": outcome["epoch"],
        "ops": outcome["ops"],
    }


def _decode_object(raw: bytes) -> Dict[str, object]:
    try:
        body = json.loads(raw or b"{}")
    except ValueError as error:
        raise BadRequest(f"bad request: {error}") from error
    if not isinstance(body, dict):
        raise BadRequest("bad request: request body must be a JSON object")
    return body
