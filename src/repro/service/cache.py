"""TTL'd query-result cache for the serving layer.

:class:`CachingRQTreeEngine` memoizes forever and must be invalidated
by hand after a graph mutation.  A *service* cannot rely on callers
remembering to do that, so its cache is defensive on both axes:

* every key embeds ``graph.version`` — a mutation makes old entries
  unreachable without any invalidation call;
* every entry carries a TTL — even version-stable answers age out, so
  a long-running service's memory is bounded by churn as well as by
  the LRU capacity.

Only deterministic, un-budgeted queries are cached (``method="lb"`` /
``"lb+"``, or ``"mc"`` with an explicit seed; budgeted results depend
on wall-clock load and must not be replayed).  Statistics use the same
:class:`~repro.core.caching.CacheStats` schema as
:class:`CachingRQTreeEngine`, so the metrics snapshot and ``repro
stats`` render both identically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Sequence, Tuple, Union

from ..core.caching import CacheStats
from ..core.engine import QueryResult

__all__ = ["TTLResultCache"]


class TTLResultCache:
    """Thread-safe LRU + TTL cache of :class:`QueryResult` objects.

    Parameters
    ----------
    capacity:
        Maximum number of entries (LRU-evicted beyond it).
    ttl_seconds:
        Lifetime of every entry; ``None`` disables expiry (pure LRU).
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: Optional[float] = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[float, QueryResult]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    @staticmethod
    def make_key(
        graph_version: int,
        sources: Union[int, Sequence[int]],
        eta: float,
        method: str,
        num_samples: int,
        seed: Optional[int],
        multi_source_mode: str,
        max_hops: Optional[int],
        backend: str,
    ) -> Hashable:
        """The full query signature, including the graph version.

        Source order is irrelevant to the answer, so sources are keyed
        as a frozenset.
        """
        if isinstance(sources, int):
            source_key: Hashable = frozenset((sources,))
        else:
            source_key = frozenset(sources)
        return (
            graph_version, source_key, eta, method, num_samples, seed,
            multi_source_mode, max_hops, backend,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[QueryResult]:
        """The cached result for *key*, or ``None`` (miss or expired)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            expires_at, result = entry
            if self._ttl is not None and now >= expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(self, key: Hashable, result: QueryResult) -> None:
        """Insert *result*; evicts the LRU entry beyond capacity."""
        expires_at = (
            self._clock() + self._ttl if self._ttl is not None else float("inf")
        )
        with self._lock:
            self._entries[key] = (expires_at, result)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def record_bypass(self) -> None:
        """Count a query that was not cacheable by contract."""
        with self._lock:
            self.stats.bypasses += 1

    def purge_expired(self) -> int:
        """Drop every expired entry now; returns how many were dropped."""
        if self._ttl is None:
            return 0
        now = self._clock()
        dropped = 0
        with self._lock:
            for key in [
                k for k, (expires_at, _) in self._entries.items()
                if now >= expires_at
            ]:
                del self._entries[key]
                dropped += 1
            self.stats.expirations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
