"""repro.service — the concurrent query-serving layer.

Everything above a single blocking :meth:`RQTreeEngine.query` call
lives here: one shared engine served through a request queue and a
worker pool, with cross-query world batching, admission control, a
TTL'd result cache, a metrics registry, and a stdlib-only HTTP JSON
frontend.

* :mod:`repro.service.metrics` — counters / gauges / latency
  histograms, snapshot-able as JSON (also what the core pipeline's
  built-in instrumentation records to);
* :mod:`repro.service.cache` — :class:`TTLResultCache`, keyed on the
  full query signature including ``graph.version``;
* :mod:`repro.service.batcher` — :class:`WorldBatcher`, sharing one
  sampled batch of worlds (a :class:`repro.accel.coins.CoinBlock`)
  between concurrent queries with the same sampling signature;
* :mod:`repro.service.pool` — :class:`WorkerPool` and
  :class:`AdmissionPolicy` (max in-flight, queue deadline,
  load-shedding into degraded answers);
* :mod:`repro.service.server` — :class:`ReliabilityService`, the
  facade tying the above together;
* :mod:`repro.service.wire` — the JSON wire protocol both HTTP
  frontends share (request parsing, result serialization);
* :mod:`repro.service.http_api` — the legacy thread-per-connection
  ``http.server`` JSON frontend;
* :mod:`repro.service.aio_gateway` — :class:`AioGateway`, the asyncio
  frontend ``repro serve`` uses by default (thousands of connections,
  explicit backpressure, streamed ``/batch`` responses).

Import note: this package's ``__init__`` is deliberately lazy (PEP
562).  Core modules (engine, verification, the accel kernel) import
``repro.service.metrics`` for instrumentation; loading the full
serving stack from there would be a cycle, so only :mod:`metrics` is
imported eagerly and everything else resolves on first attribute
access.
"""

from __future__ import annotations

from . import metrics  # noqa: F401  (eager: the instrumentation substrate)
from .metrics import MetricsRegistry, get_registry, set_registry

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "ReliabilityService",
    "ServiceHTTPServer",
    "AioGateway",
    "AdmissionPolicy",
    "WorkerPool",
    "WorldBatcher",
    "TTLResultCache",
    "retry_after_seconds",
]

#: Lazily resolved attribute -> (module, name) map (PEP 562).
_LAZY = {
    "ReliabilityService": ("server", "ReliabilityService"),
    "ServiceHTTPServer": ("http_api", "ServiceHTTPServer"),
    "AioGateway": ("aio_gateway", "AioGateway"),
    "AdmissionPolicy": ("pool", "AdmissionPolicy"),
    "WorkerPool": ("pool", "WorkerPool"),
    "WorldBatcher": ("batcher", "WorldBatcher"),
    "TTLResultCache": ("cache", "TTLResultCache"),
    "retry_after_seconds": ("wire", "retry_after_seconds"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attribute)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
