"""Asyncio HTTP gateway: thousands of connections, one worker pool.

The legacy frontend (:mod:`repro.service.http_api`) spends a thread per
connection — fine for tens of clients, hopeless for the north star's
concurrent-user counts.  :class:`AioGateway` serves the same JSON
protocol (one spec, :mod:`repro.service.wire`) from a single event
loop: connections are coroutines, queries bridge to the
:class:`~repro.service.server.ReliabilityService` worker pool through
``asyncio.wrap_future`` (the pool's ``concurrent.futures.Future``
resolves on a worker thread and wakes the loop), and the loop thread
itself never blocks on query work.

Endpoints
---------
* ``POST /query`` — identical to the legacy frontend.
* ``POST /update`` — identical to the legacy frontend; the apply runs
  on the default executor so a long update stream (payload rebuilds,
  per-shard slice streaming) never stalls the event loop's queries.
* ``POST /batch`` — body ``{"queries": [<query body>, ...]}``; every
  query is submitted up front (so they share admission, dedup, and
  world batching like any concurrent burst) and results **stream** back
  in request order as chunked newline-delimited JSON, each line the
  same wire object a ``/query`` reply carries (or
  ``{"error": ...}`` for an individually malformed entry).  A client
  can consume the first answers while later ones still compute.
* ``GET /metrics`` / ``GET /healthz`` — identical to the legacy
  frontend.

Backpressure
------------
Two explicit layers, nothing implicit:

* **Connection cap** — at most ``max_connections`` sockets are served;
  beyond that the gateway answers ``503`` with a ``Retry-After``
  header and closes.  The default cap is derived from the service's
  :class:`~repro.service.pool.AdmissionPolicy` (``8 x max_in_flight``):
  past that point queued queries would only be shed anyway, so holding
  the socket open would convert overload into latency instead of an
  actionable signal.
* **Admission shedding** — queries beyond ``max_in_flight`` still get
  a well-formed 200 with ``degraded: true`` and a ``Retry-After``
  header (same contract as the legacy frontend): the request was
  valid, the service chose not to spend compute on it.

Keep-alive: HTTP/1.1 persistent connections, honouring
``Connection: close``.  Bodies are read by ``Content-Length`` and
always fully drained — even on 404 — so a desynchronized exchange is
impossible by construction.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from .server import ReliabilityService
from .wire import (
    BadRequest,
    _decode_object,
    observe_request,
    parse_query_body,
    parse_query_object,
    parse_update_body,
    result_to_json,
    retry_after_seconds,
    update_to_json,
)

__all__ = ["AioGateway"]

#: Hard ceiling on accepted header bytes; a request line + headers
#: larger than this is a 431 and the connection closes.
_MAX_HEADER_BYTES = 32 * 1024

#: Hard ceiling on a request body (16 MiB covers any sane batch).
_MAX_BODY_BYTES = 16 * 1024 * 1024


class _HTTPError(Exception):
    """An error that maps to a complete HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AioGateway:
    """A :class:`ReliabilityService` behind an asyncio HTTP server.

    Interface-compatible with
    :class:`~repro.service.http_api.ServiceHTTPServer`: ``start`` /
    ``stop`` / ``serve_forever`` / ``address`` / ``url`` behave the
    same, so the CLI and tests swap frontends with one flag.  The event
    loop runs on a dedicated daemon thread; ``start`` returns once the
    socket is bound.

    Parameters
    ----------
    service:
        The service to expose.  The gateway starts and stops it.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    max_connections:
        Concurrent-connection cap; ``None`` derives
        ``8 * service.admission.max_in_flight``.
    """

    def __init__(
        self,
        service: ReliabilityService,
        host: str = "127.0.0.1",
        port: int = 8787,
        max_connections: Optional[int] = None,
    ) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self._service = service
        self._host = host
        self._port = port
        self.max_connections = (
            max_connections
            if max_connections is not None
            else 8 * service.admission.max_in_flight
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._connections = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def service(self) -> ReliabilityService:
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved even for ``port=0``)."""
        if self._address is None:
            raise RuntimeError("gateway is not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def open_connections(self) -> int:
        return self._connections

    def start(self) -> "AioGateway":
        """Bind the socket and serve from a background daemon thread."""
        if self._thread is not None:
            return self
        self._service.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aio-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._address is None:
            raise RuntimeError("asyncio gateway failed to bind")
        return self

    def serve_forever(self) -> None:
        """Run until interrupted (the CLI path)."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop accepting, close open connections, stop the service."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            self._stopping = True
            try:
                loop.call_soon_threadsafe(self._shutdown_event.set)
            except RuntimeError:  # pragma: no cover - loop just closed
                pass
            if self._thread is not None:
                self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None
        self._service.stop()

    def __enter__(self) -> "AioGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._shutdown_event = asyncio.Event()
        try:
            loop.run_until_complete(self._serve())
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    async def _serve(self) -> None:
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._server = server
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._started.set()
        try:
            await self._shutdown_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._connections >= self.max_connections or self._stopping:
            # Over the cap: refuse with an actionable signal instead of
            # queueing the socket into invisible latency.
            await self._write_response(
                writer, 503,
                {"error": "connection limit reached"},
                keep_alive=False,
                # A tripped connection cap is full pressure by
                # definition; the jitter spreads the reconnect wave.
                retry_after=retry_after_seconds(1.0),
            )
            writer.close()
            return
        self._connections += 1
        try:
            await self._connection_loop(reader, writer)
        except (
            ConnectionError, asyncio.IncompleteReadError, TimeoutError
        ):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while not self._stopping:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError:
                return  # clean close between requests
            except asyncio.LimitOverrunError:
                await self._write_response(
                    writer, 431, {"error": "headers too large"},
                    keep_alive=False,
                )
                return
            if len(head) > _MAX_HEADER_BYTES:
                await self._write_response(
                    writer, 431, {"error": "headers too large"},
                    keep_alive=False,
                )
                return
            try:
                method, path, headers = _parse_head(head)
            except _HTTPError as error:
                await self._write_response(
                    writer, error.status, {"error": str(error)},
                    keep_alive=False,
                )
                return
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = 0
            if length > _MAX_BODY_BYTES:
                await self._write_response(
                    writer, 413, {"error": "request body too large"},
                    keep_alive=False,
                )
                return
            # Drain the body unconditionally (even for a 404) so the
            # next request on this connection starts at a clean byte.
            body = await reader.readexactly(length) if length else b""
            keep_alive = (
                headers.get("connection", "keep-alive").lower() != "close"
            )
            started = time.perf_counter()
            done, status = await self._dispatch(
                writer, method, path, body, keep_alive
            )
            observe_request(path, status, time.perf_counter() - started)
            if not keep_alive or done:
                return

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        keep_alive: bool,
    ) -> Tuple[bool, int]:
        """Route one request; returns ``(must_close, status)``."""
        if method == "GET" and path == "/healthz":
            engine = self._service.engine
            health = {
                "status": "ok",
                "nodes": engine.graph.num_nodes,
                "arcs": engine.graph.num_arcs,
                "workers": self._service.workers,
                "frontend": "aio",
            }
            epoch = getattr(engine, "epoch", None)
            if epoch is not None:
                health["epoch"] = epoch
            shards = getattr(engine, "num_shards", None)
            if shards is not None:
                health["shards"] = shards
                shard_states = getattr(engine, "shard_states", None)
                if shard_states is not None:
                    health["shard_states"] = {
                        str(shard_id): state
                        for shard_id, state in shard_states().items()
                    }
            await self._write_response(
                writer, 200, health, keep_alive=keep_alive
            )
            return False, 200
        if method == "GET" and path == "/metrics":
            await self._write_response(
                writer, 200, self._service.metrics_snapshot(),
                keep_alive=keep_alive,
            )
            return False, 200
        if method == "POST" and path == "/query":
            status, payload, retry_after = await self._run_query(body)
            await self._write_response(
                writer, status, payload,
                keep_alive=keep_alive, retry_after=retry_after,
            )
            return False, status
        if method == "POST" and path == "/update":
            status, payload = await self._run_update(body)
            await self._write_response(
                writer, status, payload, keep_alive=keep_alive
            )
            return False, status
        if method == "POST" and path == "/batch":
            return await self._run_batch(writer, body, keep_alive)
        await self._write_response(
            writer, 404, {"error": f"unknown path {path!r}"},
            keep_alive=keep_alive,
        )
        return False, 404

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    async def _run_query(
        self, body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        try:
            sources, eta, kwargs, budget = parse_query_body(body)
        except BadRequest as error:
            return 400, {"error": str(error)}, None
        try:
            future = self._service.submit(
                sources, eta, budget=budget, **kwargs
            )
        except (ReproError, TypeError, ValueError) as error:
            return 400, {"error": f"{type(error).__name__}: {error}"}, None
        try:
            result = await asyncio.wrap_future(future)
        except (ReproError, TypeError, ValueError) as error:
            return 400, {"error": f"{type(error).__name__}: {error}"}, None
        except Exception as error:  # noqa: BLE001 - 500 beats a torn pipe
            return (
                500,
                {"error": f"internal error: {type(error).__name__}"},
                None,
            )
        shed = result.degraded and (
            result.degraded_reason or ""
        ).startswith("shed:")
        return (
            200,
            result_to_json(result),
            retry_after_seconds(self._service.shed_pressure())
            if shed else None,
        )

    async def _run_update(
        self, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        try:
            ops = parse_update_body(body)
        except BadRequest as error:
            return 400, {"error": str(error)}
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                None, self._service.apply_updates, ops
            )
        except (ReproError, TypeError, ValueError) as error:
            return 400, {"error": f"{error}"}
        except Exception as error:  # noqa: BLE001 - 500 beats a torn pipe
            return 500, {"error": f"internal error: {type(error).__name__}"}
        return 200, update_to_json(outcome)

    async def _run_batch(
        self,
        writer: asyncio.StreamWriter,
        body: bytes,
        keep_alive: bool,
    ) -> Tuple[bool, int]:
        """``POST /batch``: submit all queries, stream results in order.

        Submitting everything before awaiting anything is what lets the
        service's cross-query machinery (dedup, world batching,
        admission) see the whole burst at once — exactly as if the
        client had opened N connections, minus the N sockets.
        """
        try:
            envelope = _decode_object(body)
            queries = envelope.get("queries")
            if not isinstance(queries, list):
                raise BadRequest(
                    "bad request: 'queries' must be a JSON array"
                )
        except BadRequest as error:
            await self._write_response(
                writer, 400, {"error": str(error)}, keep_alive=keep_alive
            )
            return False, 400
        futures: List[object] = []
        for query in queries:
            try:
                sources, eta, kwargs, budget = parse_query_object(query)
                futures.append(
                    self._service.submit(sources, eta, budget=budget, **kwargs)
                )
            except (BadRequest, ReproError, TypeError, ValueError) as error:
                futures.append(error)

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            + (b"" if keep_alive else b"Connection: close\r\n")
            + b"\r\n"
        )
        for item in futures:
            if isinstance(item, Exception):
                line = {"error": f"{type(item).__name__}: {item}"}
            else:
                try:
                    result = await asyncio.wrap_future(item)
                    line = result_to_json(result)
                except Exception as error:  # noqa: BLE001 - per-line error
                    line = {"error": f"{type(error).__name__}: {error}"}
            chunk = json.dumps(line).encode("utf-8") + b"\n"
            writer.write(
                f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n"
            )
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False, 200

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        keep_alive: bool = True,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after:g}")
        if not keep_alive:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body
        )
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _parse_head(
    head: bytes,
) -> Tuple[str, str, Dict[str, str]]:
    """Split request line + headers; raises :class:`_HTTPError` on junk."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise _HTTPError(400, f"undecodable request head: {error}")
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HTTPError(400, f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, path, headers
