"""Request queue, worker pool, and admission control.

The serving layer's concurrency model is deliberately boring: one
:class:`queue.Queue` of pending requests drained by N daemon threads,
each running the full query pipeline to completion.  Reliability
queries are CPU-bound and the engine releases the GIL only inside
numpy, so threads buy *overlap* (the cross-query batcher needs
concurrent same-key queries to share worlds) and *isolation of
waiting* (slow queries don't block admission) rather than raw
parallel speed-up.

:class:`AdmissionPolicy` is where overload turns into degraded answers
instead of timeouts: requests beyond ``max_in_flight`` (or older than
``queue_deadline_seconds`` by the time a worker picks them up) are
*shed* — the service resolves them immediately with a degraded
:class:`~repro.core.engine.QueryResult`, never an exception, matching
the graceful-degradation contract of :mod:`repro.resilience`.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import WorkerPoolRestartError

__all__ = ["AdmissionPolicy", "WorkerPool"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits on what the serving queue will accept and hold.

    Parameters
    ----------
    max_in_flight:
        Maximum number of admitted-but-unresolved requests (queued or
        executing).  Submissions beyond it are shed at the door.
    queue_deadline_seconds:
        Maximum time a request may wait in the queue.  A worker that
        dequeues a request older than this sheds it instead of running
        it (the caller has likely timed out; running it would only
        delay fresher requests).  ``None`` disables the check.
    """

    max_in_flight: int = 64
    queue_deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if (
            self.queue_deadline_seconds is not None
            and self.queue_deadline_seconds <= 0
        ):
            raise ValueError(
                "queue_deadline_seconds must be positive or None, "
                f"got {self.queue_deadline_seconds}"
            )


class WorkerPool:
    """N daemon threads draining one unbounded FIFO of work items.

    The pool knows nothing about queries: it hands each dequeued item
    to *handler* and guarantees the handler's exceptions never kill a
    worker.  Items may be enqueued before :meth:`start` — they sit in
    the queue until workers exist (tests use this to stage
    deterministic concurrency scenarios).
    """

    def __init__(
        self,
        handler: Callable[[object], None],
        workers: int = 4,
        name: str = "repro-service",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._handler = handler
        self._workers = workers
        self._name = name
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def queue_depth(self) -> int:
        """Items enqueued and not yet picked up (approximate)."""
        return self._queue.qsize()

    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    def submit(self, item: object) -> None:
        """Enqueue *item* for some worker (valid before ``start()``)."""
        if self._stop.is_set():
            raise RuntimeError("worker pool is stopped")
        self._queue.put(item)

    def start(self) -> None:
        """Spawn the worker threads (idempotent while running).

        A stopped pool raises :class:`WorkerPoolRestartError`: stop()
        poisons the queue and joins the threads, which cannot be undone
        on the same object.  Whoever supervises the pool replaces it
        with a new ``WorkerPool`` instead of reviving this one.
        """
        with self._lock:
            if self._threads:
                return
            if self._stop.is_set():
                raise WorkerPoolRestartError()
            for index in range(self._workers):
                thread = threading.Thread(
                    target=self._run,
                    name=f"{self._name}-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool.

        With ``drain=True`` (default) workers finish everything already
        enqueued first; with ``drain=False`` pending items are left
        unprocessed (their futures stay unresolved — callers that need
        an answer for every request should drain).
        """
        with self._lock:
            threads, self._threads = self._threads, []
        if drain and threads:
            self._queue.join()
        self._stop.set()
        # Wake every worker blocked on get().
        for _ in threads:
            self._queue.put(_POISON)
        for thread in threads:
            thread.join(timeout=timeout)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _POISON or self._stop.is_set():
                    return
                try:
                    self._handler(item)
                except Exception:  # pragma: no cover - handler contract
                    # The service handler resolves its future under
                    # try/except; anything reaching here is a bug, but a
                    # worker must never die of it.
                    pass
            finally:
                self._queue.task_done()


_POISON = object()
