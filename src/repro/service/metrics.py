"""Metrics registry: counters, gauges, and latency histograms.

The serving layer (and, through it, the whole query pipeline — engine,
candidate generation, verification, the accel kernel) records its
operational signals here: how many queries ran, how long each stage
took, how often caches hit, how much sampling work was shared or shed.
Everything is snapshot-able as plain JSON (``repro serve`` exposes it
at ``GET /metrics``; ``repro stats --metrics`` pretty-prints a saved
snapshot).

Design constraints, in order:

* **stdlib only, imports nothing from repro** — core modules record
  into the registry, so this module must sit below all of them in the
  import graph (no cycles);
* **cheap when idle** — an instrument update is one dict lookup plus a
  lock-guarded add; instruments are recorded at per-query / per-batch
  granularity, never per-node or per-world;
* **thread-safe** — one registry is shared by every worker of the
  serving pool.

The process-global default registry (:func:`get_registry`) is what the
library's built-in instrumentation uses; a
:class:`~repro.service.server.ReliabilityService` snapshots it and
merges its own cache statistics.  Tests that need isolation install a
fresh registry with :func:`set_registry` (restoring the old one after).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets (seconds): sub-millisecond cache hits up
#: to minute-scale degraded queries, roughly 2.5x apart.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count (events, worlds, bytes...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Gauge:
    """A value that goes up and down (in-flight queries, bytes held)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and quantiles.

    Buckets are upper bounds (``observation <= bound``); one implicit
    overflow bucket catches the rest.  Quantiles are estimated by
    linear interpolation inside the containing bucket — plenty for
    latency reporting, no per-observation storage.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name}: buckets must be non-empty and sorted"
            )
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> "_Timer":
        """Context manager observing the elapsed wall time in seconds."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (0 <= q <= 1) of the observations.

        ``q=0`` is the observed minimum and ``q=1`` the observed
        maximum, exactly; anything in between is linearly interpolated
        inside the containing bucket.  An empty histogram answers
        ``0.0`` for every *q* — SLO reports read quantiles before the
        first request lands, and that must not raise.
        """
        with self._lock:
            return self._quantile_locked(q)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several quantiles under one lock acquisition.

        SLO windows export p50/p90/p99 together; computing them in one
        pass keeps the snapshot internally consistent (no observation
        can land between the p50 and the p99 of the same export).
        """
        with self._lock:
            return [self._quantile_locked(q) for q in qs]

    def _quantile_locked(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        observed_min = self._min if self._min is not None else 0.0
        observed_max = self._max if self._max is not None else 0.0
        if q == 0.0:
            return observed_min
        rank = q * self._count
        cumulative = 0
        lower = observed_min
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            upper = (
                min(self.buckets[index], observed_max)
                if index < len(self.buckets)
                else observed_max
            )
            upper = max(upper, lower)
            if cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
            lower = upper
        return observed_max

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary of the histogram state."""
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        summary: Dict[str, object] = {
            "count": count,
            "sum": total,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "mean": (total / count) if count else 0.0,
            "buckets": {
                ("%g" % bound): counts[i]
                for i, bound in enumerate(self.buckets)
            },
            "overflow": counts[-1],
        }
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            summary[label] = self.quantile(q) if count else 0.0
        return summary


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able as JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS
                )
            return instrument

    def timer(self, name: str) -> _Timer:
        """Shorthand for ``histogram(name).time()``."""
        return self.histogram(name).time()

    def _check_free(self, name: str, owner: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not owner and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different instrument type"
                )

    def names(self) -> List[str]:
        """Every registered instrument name, sorted."""
        with self._lock:
            return sorted(
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able dict of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "generated_at": time.time(),
            "counters": {
                name: c.value for name, c in sorted(counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry the library's instrumentation records to.
_DEFAULT = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The current process-global registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-global one; returns the old."""
    global _DEFAULT
    with _default_lock:
        old, _DEFAULT = _DEFAULT, registry
    return old
