"""Exception hierarchy for the :mod:`repro` library.

All errors raised at public API boundaries derive from :class:`ReproError`
so that callers can catch library failures with a single ``except`` clause
while still distinguishing user mistakes (:class:`InvalidProbabilityError`,
:class:`InvalidThresholdError`, :class:`NodeNotFoundError`) from internal
inconsistencies (:class:`IndexCorruptionError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors relating to uncertain-graph construction."""


class InvalidProbabilityError(GraphError, ValueError):
    """An arc probability lies outside the half-open interval (0, 1].

    The paper defines ``p: A -> (0, 1]``: zero-probability arcs carry no
    information and must simply be omitted, while probabilities above one
    are meaningless.
    """

    def __init__(self, value: float, arc: object = None) -> None:
        self.value = value
        self.arc = arc
        where = f" on arc {arc!r}" if arc is not None else ""
        super().__init__(
            f"arc probability must be in (0, 1], got {value!r}{where}"
        )


class InvalidThresholdError(ReproError, ValueError):
    """A reliability threshold eta lies outside the open interval (0, 1)."""

    def __init__(self, value: float) -> None:
        self.value = value
        super().__init__(
            f"reliability threshold eta must be in (0, 1), got {value!r}"
        )


class NodeNotFoundError(GraphError, KeyError):
    """A query referenced a node id absent from the graph."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node {node!r} is not present in the graph")


class EmptySourceSetError(ReproError, ValueError):
    """A reliability-search query was issued with no source nodes."""

    def __init__(self) -> None:
        super().__init__("the source set S of a query must be non-empty")


class IndexCorruptionError(ReproError):
    """An RQ-tree index failed an internal consistency check.

    Raised when loading a serialized index whose structure violates the
    RQ-tree invariants (each level partitions the node set, children are
    nested in their parent, leaves are singletons).
    """


class FlowError(ReproError):
    """Base class for errors in the max-flow subsystem."""


class InvalidCapacityError(FlowError, ValueError):
    """A flow-network arc was given a negative or NaN capacity."""

    def __init__(self, value: float) -> None:
        self.value = value
        super().__init__(f"capacity must be non-negative, got {value!r}")


class PartitionError(ReproError):
    """The balanced partitioner received an unpartitionable input."""


class BackendUnavailableError(ReproError, ValueError):
    """An explicitly requested sampling backend cannot run here.

    Raised when ``backend="numpy"`` is requested but numpy is not
    importable, or when an unknown backend name is supplied.  The
    ``backend="auto"`` default never raises — it silently falls back to
    the pure-Python reference implementation.
    """

    def __init__(self, backend: str, reason: str) -> None:
        self.backend = backend
        super().__init__(f"sampling backend {backend!r} unavailable: {reason}")
