"""Exception hierarchy for the :mod:`repro` library.

All errors raised at public API boundaries derive from :class:`ReproError`
so that callers can catch library failures with a single ``except`` clause
while still distinguishing user mistakes (:class:`InvalidProbabilityError`,
:class:`InvalidThresholdError`, :class:`NodeNotFoundError`) from internal
inconsistencies (:class:`IndexCorruptionError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors relating to uncertain-graph construction."""


class InvalidProbabilityError(GraphError, ValueError):
    """An arc probability lies outside the half-open interval (0, 1].

    The paper defines ``p: A -> (0, 1]``: zero-probability arcs carry no
    information and must simply be omitted, while probabilities above one
    are meaningless.
    """

    def __init__(self, value: float, arc: object = None) -> None:
        self.value = value
        self.arc = arc
        where = f" on arc {arc!r}" if arc is not None else ""
        super().__init__(
            f"arc probability must be in (0, 1], got {value!r}{where}"
        )


class InvalidThresholdError(ReproError, ValueError):
    """A reliability threshold eta lies outside the open interval (0, 1).

    Mirrors :class:`InvalidProbabilityError`: the offending value is kept
    on the exception (``.value``), together with optional context naming
    where the threshold came from (``.context``), and both appear in the
    message.
    """

    def __init__(self, value: float, context: object = None) -> None:
        self.value = value
        self.context = context
        where = f" in {context!r}" if context is not None else ""
        super().__init__(
            f"reliability threshold eta must be in (0, 1), got {value!r}{where}"
        )


class NodeNotFoundError(GraphError, KeyError):
    """A query referenced a node id absent from the graph."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node {node!r} is not present in the graph")


class EmptySourceSetError(ReproError, ValueError):
    """A reliability-search query was issued with no source nodes."""

    def __init__(self) -> None:
        super().__init__("the source set S of a query must be non-empty")


class InvalidMethodError(ReproError, ValueError):
    """A query named a verification method the estimator registry does
    not know, or combined a method with a feature it does not support.

    Every surface that accepts ``method=`` (``engine.query``, the
    detection helpers, the sharded gateway, the serving layer, the CLI)
    raises this same error with the same accepted set, sourced from
    :func:`repro.estimators.available_methods` — no more drifting ad-hoc
    ``ValueError`` lists.  Derives from :class:`ValueError` so existing
    ``except ValueError`` callers keep working.
    """

    def __init__(
        self,
        method: object,
        accepted: object = (),
        feature: object = None,
    ) -> None:
        self.method = method
        self.accepted = tuple(accepted)
        self.feature = feature
        expected = ", ".join(repr(name) for name in self.accepted)
        if feature is None:
            message = f"unknown method {method!r}; expected one of {expected}"
        else:
            message = (
                f"method {method!r} does not support {feature}; "
                f"methods that do: {expected}"
            )
        super().__init__(message)


class IndexCorruptionError(ReproError):
    """An RQ-tree index failed an internal consistency check.

    Raised when loading a serialized index whose structure violates the
    RQ-tree invariants (each level partitions the node set, children are
    nested in their parent, leaves are singletons).
    """


class FlowError(ReproError):
    """Base class for errors in the max-flow subsystem."""


class InvalidCapacityError(FlowError, ValueError):
    """A flow-network arc was given a negative or NaN capacity."""

    def __init__(self, value: float) -> None:
        self.value = value
        super().__init__(f"capacity must be non-negative, got {value!r}")


class PartitionError(ReproError):
    """The balanced partitioner received an unpartitionable input."""


class QueryDeadlineError(ReproError):
    """A query budget's wall-clock deadline expired where no partial
    answer can be expressed.

    The engine itself never raises this: :meth:`RQTreeEngine.query`
    degrades gracefully, returning a partial :class:`QueryResult` with
    per-node statuses.  The error exists for the *set-returning* public
    verifiers (:func:`repro.core.verification.verify_lower_bound`,
    :func:`~repro.core.verification.verify_sampling`), whose plain
    ``Set[int]`` return type cannot distinguish "rejected" from
    "ran out of time" — they raise instead of silently under-answering.
    """

    def __init__(self, elapsed: float, deadline: float) -> None:
        self.elapsed = elapsed
        self.deadline = deadline
        super().__init__(
            f"query deadline of {deadline:.6g} s expired after "
            f"{elapsed:.6g} s with no way to return a partial answer"
        )


class InjectedFault(ReproError, RuntimeError):
    """A deliberate failure raised by the fault-injection harness.

    Never raised in production: only an active
    :class:`repro.resilience.FaultPlan` can trigger it, at one of the
    named injection points compiled into the library
    (:data:`repro.resilience.faultinject.INJECTION_POINTS`).  Tests use
    it to prove degradation paths — backend fallback, partial results,
    clean :class:`ReproError` surfaces — end to end.
    """

    def __init__(self, point: str, hit: int) -> None:
        self.point = point
        self.hit = hit
        super().__init__(
            f"injected fault at point {point!r} (hit #{hit})"
        )


class ShardUnavailableError(ReproError):
    """A shard worker could not answer a sub-query.

    Raised by the shard transport (:mod:`repro.shard.worker`) when a
    worker process dies, fails to build its index, times out, or its
    runtime raises.  The sharded gateway engine never lets it escape a
    query: an unavailable shard degrades the answer (``degraded=True``,
    the shard's candidates missing from the pool) instead of failing it
    — the same never-raise contract budgets follow.
    """

    def __init__(
        self, shard_id: int, reason: str, worker_dead: bool = False
    ) -> None:
        self.shard_id = shard_id
        self.reason = reason
        #: True when the transport lost the worker itself (process died,
        #: client torn down) rather than the worker answering with an
        #: error.  The supervisor only respawns on dead-worker failures;
        #: application errors propagate without cycling a healthy worker.
        self.worker_dead = worker_dead
        super().__init__(f"shard {shard_id} unavailable: {reason}")


class WorkerPoolRestartError(ReproError, RuntimeError):
    """A stopped :class:`~repro.service.pool.WorkerPool` was re-started.

    Pools are single-shot by design: ``stop()`` poisons the queue and
    joins the threads, and none of that is reversible on the same
    object.  Restart semantics live one layer up — a supervisor (or the
    owning :class:`~repro.service.server.ReliabilityService`) replaces
    the pool with a freshly-constructed one instead of reviving it, the
    same replace-don't-revive rule the shard supervisor applies to
    worker processes.
    """

    def __init__(self) -> None:
        super().__init__(
            "worker pool cannot be restarted once stopped: construct a "
            "new WorkerPool (supervised restart replaces the pool, it "
            "does not revive it)"
        )


class BackendUnavailableError(ReproError, ValueError):
    """An explicitly requested sampling backend cannot run here.

    Raised when ``backend="numpy"`` is requested but numpy is not
    importable, or when an unknown backend name is supplied.  The
    ``backend="auto"`` default never raises — it silently falls back to
    the pure-Python reference implementation.
    """

    def __init__(self, backend: str, reason: str) -> None:
        self.backend = backend
        super().__init__(f"sampling backend {backend!r} unavailable: {reason}")
